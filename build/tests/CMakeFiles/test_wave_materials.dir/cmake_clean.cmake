file(REMOVE_RECURSE
  "CMakeFiles/test_wave_materials.dir/test_wave_materials.cpp.o"
  "CMakeFiles/test_wave_materials.dir/test_wave_materials.cpp.o.d"
  "test_wave_materials"
  "test_wave_materials.pdb"
  "test_wave_materials[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wave_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
