# Empty dependencies file for test_wave_materials.
# This may be replaced when dependencies are built.
