file(REMOVE_RECURSE
  "CMakeFiles/test_node_firmware.dir/test_node_firmware.cpp.o"
  "CMakeFiles/test_node_firmware.dir/test_node_firmware.cpp.o.d"
  "test_node_firmware"
  "test_node_firmware.pdb"
  "test_node_firmware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
