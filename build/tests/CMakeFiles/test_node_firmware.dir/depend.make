# Empty dependencies file for test_node_firmware.
# This may be replaced when dependencies are built.
