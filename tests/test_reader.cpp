#include <gtest/gtest.h>

#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/carrier.hpp"
#include "reader/inventory.hpp"
#include "reader/receiver.hpp"
#include "reader/transmitter.hpp"

namespace ecocap::reader {
namespace {

TEST(Transmitter, CwIsResonantTone) {
  TransmitterConfig cfg;
  Transmitter tx(cfg);
  dsp::Signal cw;
  tx.continuous_wave(0.01, cw);
  EXPECT_EQ(cw.size(), static_cast<std::size_t>(0.01 * cfg.carrier.fs));
  EXPECT_NEAR(dsp::estimate_tone_frequency(cw, cfg.carrier.fs, 150e3, 300e3),
              230.0e3, 200.0);
}

TEST(Transmitter, VoltageLimitEnforced) {
  Transmitter tx;
  EXPECT_THROW(tx.set_tx_voltage(300.0), std::invalid_argument);
  EXPECT_THROW(tx.set_tx_voltage(-1.0), std::invalid_argument);
  tx.set_tx_voltage(250.0);
  EXPECT_DOUBLE_EQ(tx.config().tx_voltage, 250.0);
}

TEST(Transmitter, FskCommandKeepsCarrierAlive) {
  // FSK downlink: the acoustic output never goes quiet mid-command.
  Transmitter tx;
  dsp::Workspace ws;
  dsp::Signal wave;
  tx.transmit_command(phy::Command{phy::QueryCommand{0}}, ws, wave);
  // Split into 1 ms windows; every window must carry energy.
  const std::size_t win = 2000;
  for (std::size_t i = 0; i + win <= wave.size(); i += win) {
    const dsp::Signal seg(wave.begin() + static_cast<long>(i),
                          wave.begin() + static_cast<long>(i + win));
    EXPECT_GT(dsp::rms(seg), 0.1) << "window at " << i;
  }
}

TEST(Transmitter, OokCommandHasQuietGaps) {
  TransmitterConfig cfg;
  cfg.scheme = phy::DownlinkScheme::kOok;
  cfg.pzt_q = 20.0;  // weak ring so gaps are visible
  Transmitter tx(cfg);
  dsp::Workspace ws;
  dsp::Signal wave;
  tx.transmit_command(phy::Command{phy::QueryCommand{0}}, ws, wave);
  Real min_rms = 1e9;
  const std::size_t win = 500;  // 0.25 ms
  for (std::size_t i = 0; i + win <= wave.size(); i += win) {
    const dsp::Signal seg(wave.begin() + static_cast<long>(i),
                          wave.begin() + static_cast<long>(i + win));
    min_rms = std::min(min_rms, dsp::rms(seg));
  }
  EXPECT_LT(min_rms, 0.05);
}

TEST(Receiver, DecodesCleanBackscatterFrame) {
  // Synthesize the exact uplink a node emits and decode it.
  const Real fs = 2.0e6;
  dsp::Rng rng(3);
  phy::Fm0Params line;
  line.bitrate = 1000.0;
  const phy::Bits payload = phy::random_bits(32, rng);
  const dsp::Signal switching = phy::fm0_encode_frame(payload, line, fs);

  dsp::Oscillator osc(fs, 230.0e3);
  const dsp::Signal carrier = osc.generate(switching.size() + 20000);
  phy::BackscatterParams bp;
  bp.f_blf = 4000.0;
  dsp::Signal rx = phy::backscatter_modulate(carrier, switching, fs, bp);
  // Strong CW self-interference plus noise.
  dsp::Oscillator cw(fs, 230.0e3);
  cw.reset_phase(1.1);
  for (auto& v : rx) v += cw.next(3.0);
  dsp::add_awgn(rx, 0.02, rng);

  ReceiverConfig rcfg;
  rcfg.fs = fs;
  rcfg.blf = 4000.0;
  rcfg.uplink = line;
  Receiver receiver(rcfg);
  const UplinkDecode dec = receiver.decode(rx, payload.size());
  ASSERT_TRUE(dec.valid);
  EXPECT_EQ(dec.payload, payload);
  EXPECT_NEAR(dec.carrier_estimate, 230.0e3, 300.0);
  EXPECT_GT(dec.snr_db, 5.0);
}

TEST(Receiver, DecodesWithoutSubcarrier) {
  const Real fs = 1.0e6;
  dsp::Rng rng(4);
  phy::Fm0Params line;
  line.bitrate = 2000.0;
  const phy::Bits payload = phy::random_bits(24, rng);
  const dsp::Signal switching = phy::fm0_encode_frame(payload, line, fs);
  dsp::Oscillator osc(fs, 230.0e3);
  const dsp::Signal carrier = osc.generate(switching.size() + 10000);
  phy::BackscatterParams bp;  // no BLF
  dsp::Signal rx = phy::backscatter_modulate(carrier, switching, fs, bp);
  dsp::add_awgn(rx, 0.01, rng);

  ReceiverConfig rcfg;
  rcfg.fs = fs;
  rcfg.blf = 0.0;
  rcfg.uplink = line;
  Receiver receiver(rcfg);
  const UplinkDecode dec = receiver.decode(rx, payload.size());
  ASSERT_TRUE(dec.valid);
  EXPECT_EQ(dec.payload, payload);
}


TEST(Receiver, DemodulatedBasebandTracksSwitching) {
  // Without a subcarrier, the demodulated baseband is the (phase-aligned)
  // switching waveform: its sign flips must line up with the FM0 symbols.
  const Real fs = 1.0e6;
  phy::Fm0Params line;
  line.bitrate = 2000.0;
  const phy::Bits payload{1, 1, 1, 1, 1, 1, 1, 1};  // constant-rate toggling
  const dsp::Signal switching = phy::fm0_encode_frame(payload, line, fs);
  dsp::Oscillator osc(fs, 230.0e3);
  const dsp::Signal carrier = osc.generate(switching.size());
  phy::BackscatterParams bp;
  const dsp::Signal rx = phy::backscatter_modulate(carrier, switching, fs, bp);

  ReceiverConfig rcfg;
  rcfg.fs = fs;
  rcfg.blf = 0.0;
  rcfg.uplink = line;
  Receiver receiver(rcfg);
  const dsp::Signal demod = receiver.demodulated_baseband(rx);
  ASSERT_EQ(demod.size(), rx.size());
  // The demodulated waveform correlates strongly (either polarity) with
  // the switching pattern.
  const Real c = dsp::correlation_coefficient(demod, switching);
  EXPECT_GT(std::abs(c), 0.5);
}

TEST(Receiver, RejectsNoiseOnlyCapture) {
  const Real fs = 1.0e6;
  dsp::Rng rng(5);
  dsp::Signal rx(100000, 0.0);
  dsp::add_awgn(rx, 1.0, rng);
  // Provide a faint carrier so the estimator has something to lock to but
  // no frame content.
  dsp::Oscillator osc(fs, 230.0e3);
  for (auto& v : rx) v += osc.next(0.5);
  ReceiverConfig rcfg;
  rcfg.fs = fs;
  Receiver receiver(rcfg);
  const UplinkDecode dec = receiver.decode(rx, 32);
  EXPECT_FALSE(dec.valid);
}

TEST(Receiver, EmptyCapture) {
  Receiver receiver;
  const UplinkDecode dec = receiver.decode(dsp::Signal{}, 8);
  EXPECT_FALSE(dec.valid);
}

InventoriedNode make_node(node::Firmware& fw, double snr = 25.0) {
  InventoriedNode n;
  n.firmware = &fw;
  n.snr_db = snr;
  n.environment.temperature_c = 30.0;
  return n;
}

TEST(Inventory, SingleNodeReadsAllSensors) {
  node::FirmwareConfig fc;
  fc.node_id = 0x11;
  node::Firmware fw(fc, 9);
  fw.power_on();
  std::vector<InventoriedNode> nodes{make_node(fw)};

  InventoryEngine::Config cfg;
  cfg.q = 0;
  cfg.sensors_to_read = {
      static_cast<std::uint8_t>(node::SensorId::kTemperature),
      static_cast<std::uint8_t>(node::SensorId::kHumidity)};
  InventoryEngine engine(cfg, 1);
  const InventoryResult r = engine.run(nodes);
  ASSERT_EQ(r.inventoried_ids.size(), 1u);
  EXPECT_EQ(r.inventoried_ids[0], 0x11);
  EXPECT_EQ(r.readings.size(), 2u);
  EXPECT_EQ(r.stats.collisions, 0);
}

TEST(Inventory, TenNodesAllInventoried) {
  std::vector<std::unique_ptr<node::Firmware>> firmwares;
  std::vector<InventoriedNode> nodes;
  for (int i = 0; i < 10; ++i) {
    node::FirmwareConfig fc;
    fc.node_id = static_cast<std::uint16_t>(0x100 + i);
    firmwares.push_back(std::make_unique<node::Firmware>(fc, 100 + i));
    firmwares.back()->power_on();
    nodes.push_back(make_node(*firmwares.back()));
  }
  InventoryEngine::Config cfg;
  cfg.q = 3;  // 8 slots: collisions guaranteed across rounds
  cfg.max_rounds = 20;
  cfg.sensors_to_read = {
      static_cast<std::uint8_t>(node::SensorId::kStress)};
  InventoryEngine engine(cfg, 2);
  const InventoryResult r = engine.run(nodes);
  EXPECT_EQ(r.inventoried_ids.size(), 10u);
  EXPECT_EQ(r.readings.size(), 10u);
  EXPECT_GT(r.stats.collisions, 0);  // with 10 nodes in 8 slots, certain
}

TEST(Inventory, LowSnrNodesRetryAndMayFail) {
  node::FirmwareConfig fc;
  fc.node_id = 0x22;
  node::Firmware fw(fc, 10);
  fw.power_on();
  std::vector<InventoriedNode> nodes{make_node(fw, -5.0)};  // terrible link
  InventoryEngine::Config cfg;
  cfg.q = 0;
  cfg.max_rounds = 3;
  InventoryEngine engine(cfg, 3);
  const InventoryResult r = engine.run(nodes);
  // At -5 dB the RN16 almost never survives: no inventory, several slots.
  EXPECT_TRUE(r.inventoried_ids.empty());
  EXPECT_GE(r.stats.slots, 3);
}

TEST(Inventory, CollisionStatsCounted) {
  // Two nodes forced into the same (only) slot with q = 0.
  node::FirmwareConfig fc1, fc2;
  fc1.node_id = 1;
  fc2.node_id = 2;
  node::Firmware a(fc1, 11), b(fc2, 12);
  a.power_on();
  b.power_on();
  std::vector<InventoriedNode> nodes{make_node(a), make_node(b)};
  InventoryEngine::Config cfg;
  cfg.q = 0;
  cfg.max_rounds = 1;
  InventoryEngine engine(cfg, 4);
  const InventoryResult r = engine.run(nodes);
  EXPECT_EQ(r.stats.collisions, 1);
  EXPECT_TRUE(r.inventoried_ids.empty());
}

TEST(Inventory, AssignBlfsStaggersNodes) {
  std::vector<std::unique_ptr<node::Firmware>> firmwares;
  std::vector<InventoriedNode> nodes;
  for (int i = 0; i < 3; ++i) {
    node::FirmwareConfig fc;
    fc.node_id = static_cast<std::uint16_t>(i + 1);
    firmwares.push_back(std::make_unique<node::Firmware>(fc, 50 + i));
    firmwares.back()->power_on();
    nodes.push_back(make_node(*firmwares.back()));
  }
  InventoryEngine::Config cfg;
  InventoryEngine engine(cfg, 5);
  const auto assigned = engine.assign_blfs(nodes, 4000.0, 1000.0);
  EXPECT_EQ(assigned.size(), 3u);
  EXPECT_DOUBLE_EQ(firmwares[0]->config().blf, 4000.0);
  EXPECT_DOUBLE_EQ(firmwares[1]->config().blf, 5000.0);
  EXPECT_DOUBLE_EQ(firmwares[2]->config().blf, 6000.0);
}


TEST(Receiver, SimultaneousBackscatterCollides) {
  // Waveform-level validation of why the TDMA arbitration exists (§3.4):
  // two nodes answering in the same slot produce a superposition the
  // reader cannot decode as either frame.
  const Real fs = 2.0e6;
  dsp::Rng rng(77);
  phy::Fm0Params line;
  line.bitrate = 1000.0;
  const phy::Bits pay_a = phy::random_bits(16, rng);
  const phy::Bits pay_b = phy::random_bits(16, rng);
  const dsp::Signal sw_a = phy::fm0_encode_frame(pay_a, line, fs);
  const dsp::Signal sw_b = phy::fm0_encode_frame(pay_b, line, fs);
  dsp::Oscillator osc(fs, 230.0e3);
  const dsp::Signal carrier = osc.generate(sw_a.size() + 8000);
  phy::BackscatterParams bp;
  bp.f_blf = 4000.0;
  dsp::Signal rx = phy::backscatter_modulate(carrier, sw_a, fs, bp);
  const dsp::Signal rx_b = phy::backscatter_modulate(carrier, sw_b, fs, bp);
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += 0.9 * rx_b[i];
  dsp::add_awgn(rx, 0.01, rng);

  ReceiverConfig rcfg;
  rcfg.fs = fs;
  rcfg.blf = 4000.0;
  rcfg.uplink = line;
  Receiver receiver(rcfg);
  const UplinkDecode dec = receiver.decode(rx, pay_a.size());
  // Either no decode at all or a garbled payload: never both frames clean.
  if (dec.valid) {
    EXPECT_TRUE(dec.payload != pay_a || dec.payload != pay_b);
    const bool clean_a = (dec.payload == pay_a);
    const bool clean_b = (dec.payload == pay_b);
    EXPECT_FALSE(clean_a && clean_b);
  } else {
    SUCCEED();
  }
}

/// Property: the receiver decodes across the bitrate sweep used in Fig. 16.
class ReceiverBitrateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReceiverBitrateSweep, DecodesAtBitrate) {
  const Real fs = 2.0e6;
  dsp::Rng rng(6);
  phy::Fm0Params line;
  line.bitrate = GetParam();
  const phy::Bits payload = phy::random_bits(16, rng);
  const dsp::Signal switching = phy::fm0_encode_frame(payload, line, fs);
  dsp::Oscillator osc(fs, 230.0e3);
  const dsp::Signal carrier = osc.generate(switching.size() + 8000);
  phy::BackscatterParams bp;
  bp.f_blf = 30000.0;  // keep the subcarrier above the data band
  dsp::Signal rx = phy::backscatter_modulate(carrier, switching, fs, bp);
  dsp::add_awgn(rx, 0.01, rng);

  ReceiverConfig rcfg;
  rcfg.fs = fs;
  rcfg.blf = 30000.0;
  rcfg.uplink = line;
  Receiver receiver(rcfg);
  const UplinkDecode dec = receiver.decode(rx, payload.size());
  ASSERT_TRUE(dec.valid) << GetParam();
  EXPECT_EQ(dec.payload, payload) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Bitrates, ReceiverBitrateSweep,
                         ::testing::Values(1000.0, 2000.0, 4000.0, 8000.0));

// Regression test for receiver retuning: set_blf / set_bitrate change the
// low-pass cutoff, the decimation factor and the subcarrier sweep of the
// decode chain. A stale cached filter design (the FilterCache is keyed on
// the derived cutoff) or a latched decimation would make the retuned decode
// differ from a receiver constructed with the right parameters directly.
TEST(Receiver, RetuneBlfAndBitratePickedUpByDecodeChain) {
  const Real fs = 2.0e6;
  dsp::Rng rng(9);
  phy::Fm0Params line;
  line.bitrate = 1000.0;
  const phy::Bits payload = phy::random_bits(32, rng);
  const dsp::Signal switching = phy::fm0_encode_frame(payload, line, fs);
  dsp::Oscillator osc(fs, 230.0e3);
  const dsp::Signal carrier = osc.generate(switching.size() + 20000);
  phy::BackscatterParams bp;
  bp.f_blf = 4000.0;
  dsp::Signal rx = phy::backscatter_modulate(carrier, switching, fs, bp);
  dsp::add_awgn(rx, 0.01, rng);

  // Start mis-tuned (wrong BLF and bitrate), then retune to the truth.
  ReceiverConfig rcfg;
  rcfg.fs = fs;
  rcfg.blf = 12000.0;
  rcfg.uplink = line;
  rcfg.uplink.bitrate = 4000.0;
  Receiver retuned(rcfg);
  (void)retuned.decode(rx, payload.size());  // prime any cached designs
  retuned.set_blf(4000.0);
  retuned.set_bitrate(1000.0);
  const UplinkDecode after = retuned.decode(rx, payload.size());

  // Reference: a receiver built with the correct parameters from scratch.
  ReceiverConfig good = rcfg;
  good.blf = 4000.0;
  good.uplink.bitrate = 1000.0;
  Receiver reference(good);
  const UplinkDecode expected = reference.decode(rx, payload.size());

  ASSERT_TRUE(expected.valid);
  ASSERT_TRUE(after.valid);
  EXPECT_EQ(after.payload, payload);
  EXPECT_EQ(after.payload, expected.payload);
  EXPECT_DOUBLE_EQ(after.snr_db, expected.snr_db);
  EXPECT_DOUBLE_EQ(after.carrier_estimate, expected.carrier_estimate);
  EXPECT_DOUBLE_EQ(after.preamble_correlation, expected.preamble_correlation);
}

// The same retune must hold on a reused workspace: pooled scratch from the
// mis-tuned decode (different buffer sizes after the different decimation)
// cannot leak into the retuned one.
TEST(Receiver, RetuneOnSharedWorkspaceMatchesFreshWorkspace) {
  const Real fs = 1.0e6;
  dsp::Rng rng(11);
  phy::Fm0Params line;
  line.bitrate = 2000.0;
  const phy::Bits payload = phy::random_bits(24, rng);
  const dsp::Signal switching = phy::fm0_encode_frame(payload, line, fs);
  dsp::Oscillator osc(fs, 230.0e3);
  const dsp::Signal carrier = osc.generate(switching.size() + 10000);
  phy::BackscatterParams bp;
  bp.f_blf = 8000.0;
  dsp::Signal rx = phy::backscatter_modulate(carrier, switching, fs, bp);
  dsp::add_awgn(rx, 0.01, rng);

  ReceiverConfig rcfg;
  rcfg.fs = fs;
  rcfg.blf = 16000.0;  // mis-tuned
  rcfg.uplink = line;
  Receiver receiver(rcfg);

  dsp::Workspace shared_ws;
  (void)receiver.decode(rx, payload.size(), shared_ws);
  receiver.set_blf(8000.0);
  const UplinkDecode pooled = receiver.decode(rx, payload.size(), shared_ws);

  dsp::Workspace fresh_ws;
  const UplinkDecode fresh = receiver.decode(rx, payload.size(), fresh_ws);

  ASSERT_TRUE(fresh.valid);
  ASSERT_TRUE(pooled.valid);
  EXPECT_EQ(pooled.payload, fresh.payload);
  EXPECT_DOUBLE_EQ(pooled.snr_db, fresh.snr_db);
  EXPECT_DOUBLE_EQ(pooled.preamble_correlation, fresh.preamble_correlation);
}

}  // namespace
}  // namespace ecocap::reader
