// Crash-safe checkpointing: bit-exact real serialization, the strict
// sequential Writer/Reader, atomic file replacement, RNG stream capture,
// kill-at-midpoint campaign resume (must be bit-identical to an
// uninterrupted run), and the long-campaign soak test under an active fault
// plan (quarantine entry/exit, staleness monotonicity, no workspace buffer
// leaks).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "core/workspace_pool.hpp"
#include "dsp/serialize.hpp"
#include "dsp/workspace.hpp"
#include "shm/monitor.hpp"

namespace ecocap {
namespace {

TEST(Serialize, FormatRealIsBitExact) {
  const dsp::Real cases[] = {0.0,
                             -0.0,
                             1.0 / 3.0,
                             -12345.6789,
                             5e-324,  // smallest subnormal
                             std::numeric_limits<dsp::Real>::max(),
                             std::numeric_limits<dsp::Real>::infinity(),
                             -std::numeric_limits<dsp::Real>::infinity()};
  for (const dsp::Real v : cases) {
    const dsp::Real back = dsp::ser::parse_real(dsp::ser::format_real(v));
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
        << "round trip changed bits of " << v;
  }
  const dsp::Real nan_back = dsp::ser::parse_real(
      dsp::ser::format_real(std::numeric_limits<dsp::Real>::quiet_NaN()));
  EXPECT_TRUE(std::isnan(nan_back));
  EXPECT_THROW(dsp::ser::parse_real("not-a-real"),
               std::runtime_error);
}

TEST(Serialize, WriterReaderRoundTripAndStrictness) {
  dsp::ser::Writer w("ser-test v1");
  w.u64("count", 42);
  w.i64("delta", -7);
  w.real("x", 0.1);
  w.str("name", "mid-span sensor");
  w.real_vec("vec", {1.0, -2.5, 3e-9});

  dsp::ser::Reader r(w.payload(), "ser-test v1");
  EXPECT_EQ(r.u64("count"), 42u);
  EXPECT_EQ(r.i64("delta"), -7);
  EXPECT_EQ(r.real("x"), 0.1);
  EXPECT_EQ(r.str("name"), "mid-span sensor");
  const std::vector<dsp::Real> vec = r.real_vec("vec");
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_EQ(vec[0], 1.0);
  EXPECT_EQ(vec[1], -2.5);
  EXPECT_EQ(vec[2], 3e-9);
  EXPECT_TRUE(r.exhausted());

  // Wrong header: rejected up front.
  EXPECT_THROW(dsp::ser::Reader(w.payload(), "ser-test v2"),
               std::runtime_error);
  // Key mismatch: records must be consumed in order.
  dsp::ser::Reader wrong(w.payload(), "ser-test v1");
  EXPECT_THROW(wrong.u64("delta"), std::runtime_error);
  // Truncation: a half-written record throws instead of misparsing.
  dsp::ser::Reader trunc(w.payload().substr(0, w.payload().size() / 2),
                         "ser-test v1");
  trunc.u64("count");
  EXPECT_THROW({
    trunc.i64("delta");
    trunc.real("x");
    trunc.str("name");
    trunc.real_vec("vec");
  }, std::runtime_error);
}

TEST(Serialize, AtomicWriteLeavesNoTempBehind) {
  const std::string path = "test_checkpoint_atomic.txt";
  ASSERT_TRUE(dsp::ser::atomic_write_file(path, "first\n"));
  auto content = dsp::ser::read_file(path);
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "first\n");
  EXPECT_FALSE(dsp::ser::read_file(path + ".tmp").has_value());

  // Replacing an existing file is atomic too (no partial state).
  ASSERT_TRUE(dsp::ser::atomic_write_file(path, "second\n"));
  content = dsp::ser::read_file(path);
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "second\n");
  EXPECT_FALSE(dsp::ser::read_file(path + ".tmp").has_value());
  std::remove(path.c_str());
}

TEST(Serialize, RngRoundTripPreservesCachedVariate) {
  dsp::Rng rng(1234);
  // An odd number of gaussians leaves the normal distribution's spare
  // variate cached — the state the stream operators must carry over.
  for (int i = 0; i < 7; ++i) rng.gaussian();

  dsp::ser::Writer w("rng-test v1");
  w.rng("rng", rng);
  dsp::Rng restored(1);  // wrong seed on purpose; load overwrites it
  dsp::ser::Reader r(w.payload(), "rng-test v1");
  r.rng("rng", restored);

  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(rng.gaussian(), restored.gaussian());
    EXPECT_EQ(rng.uniform(), restored.uniform());
  }
}

// --- campaign-level checks ------------------------------------------------

shm::MonitoringCampaign::Config small_campaign(const std::string& checkpoint) {
  shm::MonitoringCampaign::Config cfg;
  cfg.days = 2.0;
  cfg.step_minutes = 5.0;
  cfg.capsule_poll_hours = 3.0;
  cfg.seed = 4242;
  cfg.retry.enabled = true;
  cfg.fault = fault::FaultPlan::at_intensity(0.5);
  cfg.supervisor.enabled = true;
  cfg.checkpoint_path = checkpoint;
  cfg.checkpoint_hours = 6.0;
  return cfg;
}

void expect_series_eq(const shm::TimeSeries& a, const shm::TimeSeries& b) {
  const auto av = a.values();
  const auto bv = b.values();
  ASSERT_EQ(av.size(), bv.size());
  for (std::size_t i = 0; i < av.size(); ++i) {
    EXPECT_EQ(av[i], bv[i]) << "series diverges at sample " << i;
  }
}

void expect_results_identical(const shm::CampaignResult& a,
                              const shm::CampaignResult& b) {
  expect_series_eq(a.acceleration, b.acceleration);
  expect_series_eq(a.stress, b.stress);
  expect_series_eq(a.stress_side, b.stress_side);
  expect_series_eq(a.humidity, b.humidity);
  expect_series_eq(a.temperature, b.temperature);
  expect_series_eq(a.pressure, b.pressure);
  expect_series_eq(a.pao, b.pao);

  ASSERT_EQ(a.minute_reports.size(), b.minute_reports.size());
  for (std::size_t i = 0; i < a.minute_reports.size(); ++i) {
    for (std::size_t s = 0; s < a.minute_reports[i].size(); ++s) {
      EXPECT_EQ(a.minute_reports[i][s].section, b.minute_reports[i][s].section);
      EXPECT_EQ(a.minute_reports[i][s].pedestrians,
                b.minute_reports[i][s].pedestrians);
      EXPECT_EQ(a.minute_reports[i][s].health, b.minute_reports[i][s].health);
      EXPECT_EQ(a.minute_reports[i][s].walking_speed,
                b.minute_reports[i][s].walking_speed);
    }
  }
  EXPECT_EQ(a.health_histogram, b.health_histogram);

  ASSERT_EQ(a.anomalies.size(), b.anomalies.size());
  for (std::size_t i = 0; i < a.anomalies.size(); ++i) {
    EXPECT_EQ(a.anomalies[i].start_day, b.anomalies[i].start_day);
    EXPECT_EQ(a.anomalies[i].end_day, b.anomalies[i].end_day);
    EXPECT_EQ(a.anomalies[i].peak_zscore, b.anomalies[i].peak_zscore);
  }
  EXPECT_EQ(a.limit_violations, b.limit_violations);

  ASSERT_EQ(a.capsule_readings.size(), b.capsule_readings.size());
  for (std::size_t i = 0; i < a.capsule_readings.size(); ++i) {
    EXPECT_EQ(a.capsule_readings[i].node_id, b.capsule_readings[i].node_id);
    EXPECT_EQ(a.capsule_readings[i].sensor_id, b.capsule_readings[i].sensor_id);
    EXPECT_EQ(a.capsule_readings[i].value, b.capsule_readings[i].value);
  }
  ASSERT_EQ(a.capsule_log.size(), b.capsule_log.size());
  for (std::size_t i = 0; i < a.capsule_log.size(); ++i) {
    EXPECT_EQ(a.capsule_log[i].reading.node_id, b.capsule_log[i].reading.node_id);
    EXPECT_EQ(a.capsule_log[i].reading.value, b.capsule_log[i].reading.value);
    EXPECT_EQ(a.capsule_log[i].stale, b.capsule_log[i].stale);
    EXPECT_EQ(a.capsule_log[i].age_hours, b.capsule_log[i].age_hours);
  }
  EXPECT_EQ(a.max_staleness_hours, b.max_staleness_hours);

  EXPECT_EQ(a.inventory_totals.rounds, b.inventory_totals.rounds);
  EXPECT_EQ(a.inventory_totals.slots, b.inventory_totals.slots);
  EXPECT_EQ(a.inventory_totals.read_ok, b.inventory_totals.read_ok);
  EXPECT_EQ(a.inventory_totals.retries, b.inventory_totals.retries);
  EXPECT_EQ(a.inventory_totals.timeouts, b.inventory_totals.timeouts);
  EXPECT_EQ(a.inventory_totals.giveups, b.inventory_totals.giveups);
  EXPECT_EQ(a.inventory_totals.backoff_slots, b.inventory_totals.backoff_slots);
  EXPECT_EQ(a.inventory_totals.deadline_trips,
            b.inventory_totals.deadline_trips);

  EXPECT_EQ(a.supervisor_totals.fallbacks, b.supervisor_totals.fallbacks);
  EXPECT_EQ(a.supervisor_totals.probes, b.supervisor_totals.probes);
  EXPECT_EQ(a.supervisor_totals.quarantines, b.supervisor_totals.quarantines);
  EXPECT_EQ(a.supervisor_totals.reintegrations,
            b.supervisor_totals.reintegrations);
  EXPECT_EQ(a.supervisor_totals.skipped_polls,
            b.supervisor_totals.skipped_polls);
  ASSERT_EQ(a.link_states.size(), b.link_states.size());
  for (const auto& [node, sa] : a.link_states) {
    const auto it = b.link_states.find(node);
    ASSERT_NE(it, b.link_states.end());
    EXPECT_EQ(sa.ladder_index, it->second.ladder_index);
    EXPECT_EQ(sa.ewma_success, it->second.ewma_success);
    EXPECT_EQ(sa.quarantined, it->second.quarantined);
    EXPECT_EQ(sa.fallbacks, it->second.fallbacks);
    EXPECT_EQ(sa.quarantines, it->second.quarantines);
  }
}

TEST(CampaignCheckpoint, KillAtMidpointResumeIsBitIdentical) {
  const std::string cp = "test_checkpoint_campaign.txt";
  std::remove(cp.c_str());

  // Reference: the uninterrupted run (no checkpointing at all).
  shm::MonitoringCampaign::Config full_cfg = small_campaign("");
  const shm::CampaignResult full = shm::MonitoringCampaign(full_cfg).run();
  ASSERT_TRUE(full.completed);
  ASSERT_GT(full.capsule_readings.size(), 0u);

  // Crash at the midpoint: a final checkpoint is written, the result is
  // flagged partial.
  shm::MonitoringCampaign::Config crash_cfg = small_campaign(cp);
  crash_cfg.stop_after_steps = (2 * 24 * 60 / 5) / 2;  // half the steps
  const shm::CampaignResult partial =
      shm::MonitoringCampaign(crash_cfg).run();
  EXPECT_FALSE(partial.completed);
  ASSERT_TRUE(dsp::ser::read_file(cp).has_value());

  // Resume to completion and compare every field of the result.
  shm::MonitoringCampaign::Config resume_cfg = small_campaign(cp);
  const shm::CampaignResult resumed =
      shm::MonitoringCampaign(resume_cfg).resume();
  EXPECT_TRUE(resumed.completed);
  expect_results_identical(full, resumed);
  std::remove(cp.c_str());
}

TEST(CampaignCheckpoint, ResumeRejectsMissingOrMismatchedCheckpoint) {
  const std::string cp = "test_checkpoint_mismatch.txt";
  std::remove(cp.c_str());

  // Missing file.
  shm::MonitoringCampaign::Config cfg = small_campaign(cp);
  EXPECT_THROW(shm::MonitoringCampaign(cfg).resume(), std::runtime_error);

  // Write a checkpoint, then try to resume with a different fingerprint.
  shm::MonitoringCampaign::Config crash_cfg = small_campaign(cp);
  crash_cfg.stop_after_steps = 24;
  shm::MonitoringCampaign(crash_cfg).run();
  ASSERT_TRUE(dsp::ser::read_file(cp).has_value());
  shm::MonitoringCampaign::Config other = small_campaign(cp);
  other.seed = 999;  // different campaign: the checkpoint must be rejected
  EXPECT_THROW(shm::MonitoringCampaign(other).resume(), std::runtime_error);

  // Corrupt file: truncate it mid-record.
  const auto content = dsp::ser::read_file(cp);
  ASSERT_TRUE(content.has_value());
  ASSERT_TRUE(
      dsp::ser::atomic_write_file(cp, content->substr(0, content->size() / 3)));
  shm::MonitoringCampaign::Config again = small_campaign(cp);
  EXPECT_THROW(shm::MonitoringCampaign(again).resume(), std::runtime_error);
  std::remove(cp.c_str());
}

// The long-campaign soak test of the issue: several days of supervised,
// fault-injected polling against depth-starved capsules. Asserts the
// supervisor actually exercises quarantine entry AND reintegration probing,
// that held (stale) readings age monotonically until refreshed, and that
// the workspace buffer pool balances its checkouts (no leaked buffers).
TEST(CampaignSoak, QuarantineLifecycleStalenessAndNoBufferLeaks) {
  const dsp::Workspace::Stats before =
      core::WorkspacePool::shared().total_stats();

  shm::MonitoringCampaign::Config cfg;
  cfg.days = 4.0;
  cfg.step_minutes = 5.0;
  cfg.capsule_poll_hours = 2.0;
  cfg.seed = 31337;
  // Starve the deep capsules: at 10 dB contact SNR the default ladder's
  // +6 dB floor cannot rescue the farthest nodes, so they must end up
  // quarantined with periodic reintegration probes.
  cfg.capsule_snr_at_contact_db = 10.0;
  cfg.retry.enabled = true;
  cfg.fault = fault::FaultPlan::at_intensity(0.3);
  cfg.supervisor.enabled = true;

  const shm::CampaignResult res = shm::MonitoringCampaign(cfg).run();
  ASSERT_TRUE(res.completed);

  // Quarantine lifecycle was exercised.
  EXPECT_GE(res.supervisor_totals.quarantines, 1);
  EXPECT_GE(res.supervisor_totals.reintegration_probes, 1);
  EXPECT_GT(res.supervisor_totals.skipped_polls, 0);
  EXPECT_GT(res.supervisor_totals.fallbacks, 0);
  // ...and it actually cost polls: some nodes went stale for hours.
  EXPECT_FALSE(res.max_staleness_hours.empty());

  // While a reading is held, its age grows strictly; a fresh reading
  // resets it to zero.
  std::map<std::pair<std::uint16_t, std::uint8_t>, shm::Real> last_age;
  for (const auto& entry : res.capsule_log) {
    const auto key =
        std::make_pair(entry.reading.node_id, entry.reading.sensor_id);
    if (entry.stale) {
      const auto it = last_age.find(key);
      if (it != last_age.end() && it->second > 0.0) {
        EXPECT_GT(entry.age_hours, it->second)
            << "staleness must grow while a reading is held (node "
            << entry.reading.node_id << ")";
      }
      EXPECT_GT(entry.age_hours, 0.0);
    } else {
      EXPECT_EQ(entry.age_hours, 0.0);
    }
    last_age[key] = entry.stale ? entry.age_hours : 0.0;
  }

  // No leaked workspace buffers: every checkout this campaign made was
  // returned to the pool.
  const dsp::Workspace::Stats after =
      core::WorkspacePool::shared().total_stats();
  EXPECT_EQ(after.checkouts - before.checkouts,
            after.returns - before.returns);
}

}  // namespace
}  // namespace ecocap
