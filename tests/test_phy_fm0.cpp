#include <gtest/gtest.h>

#include "core/ber_harness.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/fm0.hpp"

namespace ecocap::phy {
namespace {

TEST(Fm0, EncodeLengthMatchesBits) {
  const Bits bits{1, 0, 1, 1};
  const Signal x = fm0_encode(bits, 32.0, 1.0);
  EXPECT_EQ(x.size(), 128u);
}

TEST(Fm0, LevelInvertsAtEverySymbolBoundary) {
  const Bits bits{1, 1, 1, 1};
  const Signal x = fm0_encode(bits, 32.0, 1.0);
  // Data-1 has no mid transition: each symbol is constant, and consecutive
  // symbols alternate.
  for (int k = 0; k < 4; ++k) {
    const Real first = x[static_cast<std::size_t>(32 * k + 1)];
    const Real last = x[static_cast<std::size_t>(32 * k + 30)];
    EXPECT_EQ(first, last) << "bit " << k;
    if (k > 0) {
      EXPECT_EQ(x[static_cast<std::size_t>(32 * k - 1)], -first);
    }
  }
}

TEST(Fm0, ZeroHasMidTransition) {
  const Bits bits{0};
  const Signal x = fm0_encode(bits, 32.0, 1.0);
  EXPECT_EQ(x[4], -x[20]);
}

TEST(Fm0, EncodeRejectsLowSampleRate) {
  EXPECT_THROW((void)fm0_encode(Bits{1}, 3.0, 1.0), std::invalid_argument);
}

TEST(Fm0, CleanDecodeRoundTrip) {
  dsp::Rng rng(3);
  const Bits tx = random_bits(128, rng);
  const Signal x = fm0_encode(tx, 16.0, 1.0);
  const Bits rx = fm0_decode(x, 16.0, tx.size());
  EXPECT_EQ(rx, tx);
}

TEST(Fm0, DecodeSurvivesModerateNoise) {
  dsp::Rng rng(4);
  const Bits tx = random_bits(256, rng);
  Signal x = fm0_encode(tx, 32.0, 1.0);
  dsp::add_awgn_snr(x, 6.0, rng);
  const Bits rx = fm0_decode(x, 32.0, tx.size());
  EXPECT_LT(hamming_distance(tx, rx), 5u);
}

TEST(Fm0, DecodeInvertedSignalSameBits) {
  dsp::Rng rng(5);
  const Bits tx = random_bits(64, rng);
  Signal x = fm0_encode(tx, 16.0, 1.0);
  for (auto& v : x) v = -v;
  EXPECT_EQ(fm0_decode(x, 16.0, tx.size()), tx);
}

TEST(Fm0, PreambleAlternates) {
  Fm0Params p;
  p.preamble_pairs = 4;
  const Bits pre = fm0_preamble(p);
  ASSERT_EQ(pre.size(), 8u);
  for (std::size_t i = 0; i < pre.size(); ++i) {
    EXPECT_EQ(pre[i], (i % 2 == 0) ? 1 : 0);
  }
}

TEST(Fm0, FrameDecodeWithOffsetAndNoise) {
  dsp::Rng rng(6);
  Fm0Params params;
  params.bitrate = 1000.0;
  const Real fs = 64000.0;
  const Bits payload = random_bits(48, rng);
  const Signal frame = fm0_encode_frame(payload, params, fs);

  // Embed the frame at an arbitrary offset in a noisy capture.
  Signal capture(frame.size() + 4000, 0.0);
  const std::size_t offset = 1712;
  for (std::size_t i = 0; i < frame.size(); ++i) capture[offset + i] = frame[i];
  dsp::add_awgn(capture, 0.25, rng);

  const Fm0FrameDecode dec =
      fm0_decode_frame(capture, params, fs, payload.size());
  ASSERT_FALSE(dec.payload.empty());
  EXPECT_NEAR(static_cast<double>(dec.frame_start),
              static_cast<double>(offset), 3.0);
  EXPECT_EQ(dec.payload, payload);
  EXPECT_GT(dec.preamble_correlation, 0.8);
}

TEST(Fm0, FrameDecodeRejectsNoiseOnlyCapture) {
  dsp::Rng rng(8);
  Signal capture(20000, 0.0);
  dsp::add_awgn(capture, 1.0, rng);
  Fm0Params params;
  params.bitrate = 1000.0;
  const Fm0FrameDecode dec = fm0_decode_frame(capture, params, 64000.0, 16);
  EXPECT_TRUE(dec.payload.empty());
}

TEST(Fm0HardDecode, MatchesMlOnCleanSignal) {
  dsp::Rng rng(9);
  const Bits tx = random_bits(64, rng);
  const Signal x = fm0_encode(tx, 32.0, 1.0);
  // The hard decoder keys on transition structure; on clean input it
  // recovers the same bits (up to polarity conventions it is immune to).
  EXPECT_EQ(core::fm0_hard_decode(x, 32.0, tx.size()), tx);
}

TEST(BerHarness, MlBeatsHardDecisionAtLowSnr) {
  core::BerConfig cfg;
  cfg.snr_db = 4.0;
  cfg.total_bits = 40000;
  cfg.decoder = core::UplinkDecoder::kMlFm0;
  const auto ml = core::fm0_ber_monte_carlo(cfg);
  cfg.decoder = core::UplinkDecoder::kHardDecision;
  const auto hard = core::fm0_ber_monte_carlo(cfg);
  EXPECT_LT(ml.ber(), hard.ber());
}

TEST(BerHarness, BerMonotoneInSnr) {
  core::BerConfig cfg;
  cfg.total_bits = 30000;
  Real prev = 1.0;
  for (Real snr : {0.0, 4.0, 8.0}) {
    cfg.snr_db = snr;
    const Real ber = core::fm0_ber_monte_carlo(cfg).ber();
    EXPECT_LE(ber, prev + 0.01);
    prev = ber;
  }
}

TEST(BerHarness, HighSnrIsErrorFree) {
  core::BerConfig cfg;
  cfg.snr_db = 14.0;
  cfg.total_bits = 20000;
  EXPECT_EQ(core::fm0_ber_monte_carlo(cfg).errors, 0u);
}

/// Property: frame decode round-trips across the paper's bitrate sweep
/// (Fig. 16 range) at healthy SNR.
class Fm0BitrateSweep : public ::testing::TestWithParam<double> {};

TEST_P(Fm0BitrateSweep, FrameRoundTripsAtHighSnr) {
  dsp::Rng rng(10);
  Fm0Params params;
  params.bitrate = GetParam();
  const Real fs = params.bitrate * 32.0;
  const Bits payload = random_bits(40, rng);
  Signal frame = fm0_encode_frame(payload, params, fs);
  dsp::add_awgn_snr(frame, 15.0, rng);
  const Fm0FrameDecode dec =
      fm0_decode_frame(frame, params, fs, payload.size());
  EXPECT_EQ(dec.payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Bitrates, Fm0BitrateSweep,
                         ::testing::Values(1000.0, 2000.0, 4000.0, 8000.0,
                                           13000.0, 15000.0));

}  // namespace
}  // namespace ecocap::phy
