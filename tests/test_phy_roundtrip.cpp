// Property-based round-trip suite for the PHY line codes (PIE downlink, FM0
// uplink) and the Gen2 CRCs: over ~1k seeded random payloads each, encode ->
// decode at zero noise must recover the payload exactly. On a failure the
// payload is shrunk by halving so the log shows a near-minimal
// counterexample instead of a 64-bit blob.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "phy/crc.hpp"
#include "phy/fm0.hpp"
#include "phy/pie.hpp"

namespace ecocap::phy {
namespace {

constexpr std::uint64_t kSeed = 20260805;

std::string bits_to_string(const Bits& bits) {
  std::string s;
  s.reserve(bits.size());
  for (auto b : bits) s.push_back(b ? '1' : '0');
  return s;
}

/// Shrink a failing payload by halving while a half still fails `ok`.
/// Returns a (locally) minimal counterexample for the failure message.
template <typename Pred>
Bits shrink_failure(Bits bits, Pred ok) {
  bool shrunk = true;
  while (shrunk && bits.size() > 1) {
    shrunk = false;
    const auto half = static_cast<std::ptrdiff_t>(bits.size() / 2);
    const Bits lo(bits.begin(), bits.begin() + half);
    const Bits hi(bits.begin() + half, bits.end());
    if (!lo.empty() && !ok(lo)) {
      bits = lo;
      shrunk = true;
    } else if (!hi.empty() && !ok(hi)) {
      bits = hi;
      shrunk = true;
    }
  }
  return bits;
}

/// Run `iterations` random payloads through `ok`; on failure, shrink and
/// report the counterexample.
template <typename Pred>
void check_property(const char* name, int iterations, std::size_t max_bits,
                    Pred ok) {
  dsp::Rng rng(kSeed);
  for (int i = 0; i < iterations; ++i) {
    const std::size_t n = 1 + rng.index(max_bits);
    const Bits payload = random_bits(n, rng);
    if (!ok(payload)) {
      const Bits minimal = shrink_failure(payload, ok);
      FAIL() << name << " failed at iteration " << i << " for payload "
             << bits_to_string(payload) << " (shrunk to "
             << bits_to_string(minimal) << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// PIE downlink
// ---------------------------------------------------------------------------

bool pie_roundtrips(const Bits& payload) {
  const PieParams params;
  const Real fs = 50.0e3;  // 50 samples per tari: plenty for exact timing
  const Signal wave = pie_encode(payload, params, fs);
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;
  const auto dec = pie_decode(levels, fs, payload.size(), params);
  return dec.has_value() && dec->payload == payload;
}

TEST(PieRoundtrip, RandomPayloadsRecoverExactly) {
  check_property("pie_roundtrip", 1000, 64, pie_roundtrips);
}

TEST(PieRoundtrip, SpanOverloadMatchesLegacyWrapper) {
  dsp::Rng rng(kSeed ^ 1);
  const PieParams params;
  for (int i = 0; i < 50; ++i) {
    const Bits payload = random_bits(1 + rng.index(64), rng);
    const Signal legacy = pie_encode(payload, params, 50.0e3);
    Signal out;
    pie_encode(payload, params, 50.0e3, PiePreamble{}, out);
    EXPECT_EQ(legacy, out) << "payload " << bits_to_string(payload);
  }
}

// ---------------------------------------------------------------------------
// FM0 uplink
// ---------------------------------------------------------------------------

bool fm0_roundtrips(const Bits& payload) {
  // The preamble is an alternating "1010.." run, so a payload that opens
  // with "10" extends it and the matched filter ties exactly at a 2-bit
  // shift — frame sync is inherently ambiguous for those payloads (Gen2
  // proper breaks the tie with a violation bit). The round-trip property
  // therefore holds for payloads that do not alias the preamble.
  if (payload.size() >= 2 && payload[0] && !payload[1]) return true;
  const Fm0Params params;  // 1 kbps
  const Real fs = 8.0 * params.bitrate;  // 8 samples/bit keeps CI fast
  const Signal wave = fm0_encode_frame(payload, params, fs);
  const Fm0FrameDecode dec =
      fm0_decode_frame(wave, params, fs, payload.size());
  return dec.payload == payload;
}

TEST(Fm0Roundtrip, RandomPayloadsRecoverExactly) {
  check_property("fm0_roundtrip", 1000, 48, fm0_roundtrips);
}

TEST(Fm0Roundtrip, SpanOverloadMatchesLegacyWrapper) {
  dsp::Rng rng(kSeed ^ 2);
  const Fm0Params params;
  const Real fs = 8.0 * params.bitrate;
  for (int i = 0; i < 50; ++i) {
    const Bits payload = random_bits(1 + rng.index(48), rng);
    const Signal legacy = fm0_encode_frame(payload, params, fs);
    Signal out;
    fm0_encode_frame(payload, params, fs, out);
    EXPECT_EQ(legacy, out) << "payload " << bits_to_string(payload);

    const Signal raw_legacy = fm0_encode(payload, fs, params.bitrate);
    Signal raw_out;
    fm0_encode(payload, fs, params.bitrate, 1.0, raw_out);
    EXPECT_EQ(raw_legacy, raw_out) << "payload " << bits_to_string(payload);
  }
}

// ---------------------------------------------------------------------------
// CRC-5 / CRC-16
// ---------------------------------------------------------------------------

bool crc5_roundtrips(const Bits& payload) {
  Bits framed = payload;
  append_crc5(framed);
  return framed.size() == payload.size() + 5 && check_crc5(framed);
}

bool crc16_roundtrips(const Bits& payload) {
  Bits framed = payload;
  append_crc16(framed);
  return framed.size() == payload.size() + 16 && check_crc16(framed);
}

TEST(CrcRoundtrip, AppendThenCheckAlwaysPasses) {
  check_property("crc5_roundtrip", 1000, 64, crc5_roundtrips);
  check_property("crc16_roundtrip", 1000, 64, crc16_roundtrips);
}

TEST(CrcRoundtrip, AnySingleBitFlipIsDetected) {
  dsp::Rng rng(kSeed ^ 3);
  for (int i = 0; i < 200; ++i) {
    Bits framed = random_bits(8 + rng.index(32), rng);
    append_crc16(framed);
    const std::size_t flip = rng.index(framed.size());
    framed[flip] ^= 1u;
    EXPECT_FALSE(check_crc16(framed))
        << "undetected flip at bit " << flip << " of "
        << bits_to_string(framed);
  }
  for (int i = 0; i < 200; ++i) {
    Bits framed = random_bits(8 + rng.index(16), rng);
    append_crc5(framed);
    const std::size_t flip = rng.index(framed.size());
    framed[flip] ^= 1u;
    EXPECT_FALSE(check_crc5(framed))
        << "undetected flip at bit " << flip << " of "
        << bits_to_string(framed);
  }
}

}  // namespace
}  // namespace ecocap::phy
