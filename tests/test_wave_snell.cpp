#include <gtest/gtest.h>

#include <cmath>

#include "wave/beam.hpp"
#include "wave/prism.hpp"
#include "wave/snell.hpp"

namespace ecocap::wave {
namespace {

const Material kPla = materials::pla();
const Material kConcrete = materials::reference_concrete();

TEST(Snell, CriticalAnglesMatchPaper) {
  // Paper §3.2: first CA ~34 deg, second CA ~73 deg for PLA into concrete.
  const auto ca1 = first_critical_angle(kPla, kConcrete);
  const auto ca2 = second_critical_angle(kPla, kConcrete);
  ASSERT_TRUE(ca1.has_value());
  ASSERT_TRUE(ca2.has_value());
  EXPECT_NEAR(rad_to_deg(*ca1), 34.0, 1.0);
  EXPECT_NEAR(rad_to_deg(*ca2), 73.0, 2.0);
}

TEST(Snell, RefractionObeysSnellsLaw) {
  const Real theta_i = deg_to_rad(20.0);
  const Refraction r = refract(kPla, kConcrete, theta_i);
  ASSERT_TRUE(r.theta_p.has_value());
  ASSERT_TRUE(r.theta_s.has_value());
  // Eq. 2: sin(theta_i)/C_i = sin(theta_p)/C_p = sin(theta_s)/C_s.
  EXPECT_NEAR(std::sin(theta_i) / kPla.cp, std::sin(*r.theta_p) / kConcrete.cp,
              1e-12);
  EXPECT_NEAR(std::sin(theta_i) / kPla.cp, std::sin(*r.theta_s) / kConcrete.cs,
              1e-12);
  // Eq. 3: Cp > Cs => theta_p > theta_s.
  EXPECT_GT(*r.theta_p, *r.theta_s);
}

TEST(Snell, PWaveVanishesPastFirstCritical) {
  const Real ca1 = *first_critical_angle(kPla, kConcrete);
  const Refraction below = refract(kPla, kConcrete, ca1 - 0.01);
  const Refraction above = refract(kPla, kConcrete, ca1 + 0.01);
  EXPECT_TRUE(below.theta_p.has_value());
  EXPECT_FALSE(above.theta_p.has_value());
  EXPECT_TRUE(above.theta_s.has_value());
}

TEST(Snell, BothModesVanishPastSecondCritical) {
  const Real ca2 = *second_critical_angle(kPla, kConcrete);
  const Refraction above = refract(kPla, kConcrete, ca2 + 0.02);
  EXPECT_FALSE(above.theta_p.has_value());
  EXPECT_FALSE(above.theta_s.has_value());
}

TEST(Snell, NoCriticalAngleIntoSlowerMedium) {
  // Concrete into PLA: the wave slows down, never evanescent.
  EXPECT_FALSE(first_critical_angle(kConcrete, kPla).has_value());
}

TEST(Snell, OutOfRangeAngleThrows) {
  EXPECT_THROW((void)refract(kPla, kConcrete, -0.1), std::invalid_argument);
  EXPECT_THROW((void)refract(kPla, kConcrete, 1.6), std::invalid_argument);
}

TEST(ModeAmplitudes, Fig4Shape) {
  // Normal incidence: pure P.
  const ModeAmplitudes a0 = transmitted_mode_amplitudes(kPla, kConcrete, 0.0);
  EXPECT_NEAR(a0.p, 1.0, 1e-9);
  EXPECT_NEAR(a0.s, 0.0, 1e-9);

  // Dual-mode region (15 deg): both present — the bad operating point.
  const ModeAmplitudes a15 =
      transmitted_mode_amplitudes(kPla, kConcrete, deg_to_rad(15.0));
  EXPECT_GT(a15.p, 0.3);
  EXPECT_GT(a15.s, 0.1);

  // S-only window (50-70 deg): S near max, P extinct.
  for (Real deg : {50.0, 60.0, 70.0}) {
    const ModeAmplitudes a =
        transmitted_mode_amplitudes(kPla, kConcrete, deg_to_rad(deg));
    EXPECT_EQ(a.p, 0.0) << deg;
    EXPECT_GT(a.s, 0.6) << deg;
  }

  // Past the second critical angle: only surface waves.
  const ModeAmplitudes a80 =
      transmitted_mode_amplitudes(kPla, kConcrete, deg_to_rad(80.0));
  EXPECT_EQ(a80.p, 0.0);
  EXPECT_EQ(a80.s, 0.0);
  EXPECT_GT(a80.surface, 0.0);
}

TEST(ModeAmplitudes, PMonotoneDecreasingToFirstCritical) {
  Real prev = 2.0;
  for (Real deg = 0.0; deg <= 33.0; deg += 3.0) {
    const ModeAmplitudes a =
        transmitted_mode_amplitudes(kPla, kConcrete, deg_to_rad(deg));
    EXPECT_LE(a.p, prev + 1e-12);
    prev = a.p;
  }
}

TEST(Prism, DefaultIsSixtyDegreesSOnly) {
  const WavePrism p = WavePrism::default_for(kConcrete);
  EXPECT_NEAR(rad_to_deg(p.incident_angle()), 60.0, 1e-9);
  EXPECT_TRUE(p.s_only());
}

TEST(Prism, SOnlyWindowMatchesCriticalAngles) {
  for (Real deg : {10.0, 20.0, 30.0}) {
    WavePrism p(kPla, kConcrete, deg_to_rad(deg));
    EXPECT_FALSE(p.s_only()) << deg;
  }
  for (Real deg : {35.0, 45.0, 60.0, 72.0}) {
    WavePrism p(kPla, kConcrete, deg_to_rad(deg));
    EXPECT_TRUE(p.s_only()) << deg;
  }
  WavePrism beyond(kPla, kConcrete, deg_to_rad(80.0));
  EXPECT_FALSE(beyond.s_only());
}

TEST(Prism, ConductedAmplitudesIncludeInterfaceLoss) {
  const WavePrism p = WavePrism::default_for(kConcrete);
  const ModeAmplitudes raw =
      transmitted_mode_amplitudes(kPla, kConcrete, p.incident_angle());
  const ModeAmplitudes conducted = p.conducted_amplitudes();
  EXPECT_LT(conducted.s, raw.s);
  EXPECT_GT(conducted.s, raw.s * 0.6);  // most energy still crosses
}

TEST(Beam, PaperHalfBeamAngle) {
  // Paper §3.2: D = 40 mm, f = 230 kHz, Cp = 3338 -> alpha ~ 11 deg.
  const PistonBeam b{0.040, 230.0e3, 3338.0};
  EXPECT_NEAR(rad_to_deg(b.half_beam_angle()), 11.0, 0.5);
}

TEST(Beam, PaperCoverageCone) {
  // 15 cm wall -> ~132 cm^3 cone.
  const PistonBeam b{0.040, 230.0e3, 3338.0};
  const Real v_cm3 = b.coverage_cone_volume(0.15) * 1.0e6;
  EXPECT_NEAR(v_cm3, 132.0, 8.0);
}

TEST(Beam, WideBeamClampsAtHalfSpace) {
  // A tiny transducer at low frequency radiates into the whole half-space.
  const PistonBeam b{0.005, 20.0e3, 3338.0};
  EXPECT_NEAR(rad_to_deg(b.half_beam_angle()), 90.0, 1e-9);
}

TEST(Beam, InvalidThrows) {
  const PistonBeam b{0.0, 230.0e3, 3338.0};
  EXPECT_THROW((void)b.half_beam_angle(), std::invalid_argument);
}

TEST(Beam, MakeBeamUsesMediumVelocity) {
  const PistonBeam b = make_beam(0.040, 230.0e3, kConcrete);
  EXPECT_DOUBLE_EQ(b.velocity, kConcrete.cp);
}

/// Property: conducted S amplitude is maximal somewhere strictly inside the
/// S-only window, across plausible prism velocities.
class PrismVelocitySweep : public ::testing::TestWithParam<double> {};

TEST_P(PrismVelocitySweep, SOnlyWindowExists) {
  Material prism = materials::pla();
  prism.cp = GetParam();
  const auto ca1 = first_critical_angle(prism, kConcrete);
  const auto ca2 = second_critical_angle(prism, kConcrete);
  ASSERT_TRUE(ca1 && ca2);
  EXPECT_LT(*ca1, *ca2);
  const Real mid = 0.5 * (*ca1 + *ca2);
  const ModeAmplitudes a = transmitted_mode_amplitudes(prism, kConcrete, mid);
  EXPECT_EQ(a.p, 0.0);
  EXPECT_GT(a.s, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Velocities, PrismVelocitySweep,
                         ::testing::Values(1400.0, 1600.0, 1865.0));

}  // namespace
}  // namespace ecocap::wave
