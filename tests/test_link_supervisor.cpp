// Adaptive link supervision: config validation, the fallback-ladder state
// machine (degrade / probe / revoke), quarantine entry and exponential
// reintegration, the round slot-budget watchdog, and the pinned regression
// of the tentpole claim — a fixed-bitrate campaign starves the deep
// capsules (<60% delivered) while the supervised one recovers them (>95%).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "channel/snr_models.hpp"
#include "core/inventory_session.hpp"
#include "fault/fault.hpp"
#include "node/firmware.hpp"
#include "reader/inventory.hpp"
#include "reader/link_supervisor.hpp"
#include "wave/material.hpp"

namespace ecocap::reader {
namespace {

SupervisorConfig quick_config() {
  SupervisorConfig cfg;
  cfg.enabled = true;
  cfg.ewma_alpha = 0.6;
  cfg.degrade_below = 0.55;
  cfg.probe_after = 3;
  cfg.probe_after_max = 12;
  cfg.quarantine_after = 2;
  cfg.reintegration_base_polls = 2;
  cfg.reintegration_max_polls = 8;
  return cfg;
}

TEST(SupervisorConfig, ValidatesLadder) {
  SupervisorConfig cfg;
  cfg.ladder.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.ladder[1].bitrate = cfg.ladder[0].bitrate;  // not strictly decreasing
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.ladder[0].snr_delta_db = 1.0;  // rung 0 must be the reference
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.ladder[2].bitrate = -100.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  EXPECT_NO_THROW(SupervisorConfig{}.validate());
}

TEST(SupervisorConfig, ValidatesThresholdsAndTiming) {
  SupervisorConfig cfg;
  cfg.ewma_alpha = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.degrade_below = 0.95;  // >= recover_above
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.probe_after = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.probe_after_max = cfg.probe_after - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.quarantine_after = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.reintegration_base_polls = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.reintegration_max_polls = cfg.reintegration_base_polls - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = SupervisorConfig{};
  cfg.round_slot_budget = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // The LinkSupervisor constructor enforces validation too.
  cfg = SupervisorConfig{};
  cfg.ladder.clear();
  EXPECT_THROW(LinkSupervisor{cfg}, std::invalid_argument);
}

TEST(RetryPolicyValidation, RejectsDegenerateSettings) {
  RetryPolicy p;
  p.backoff_base_slots = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = RetryPolicy{};
  p.backoff_max_slots = p.backoff_base_slots - 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = RetryPolicy{};
  p.max_retries = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = RetryPolicy{};
  p.giveup_budget = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = RetryPolicy{};
  p.slot_timeout_s = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  // The engine validates at construction; a bad slot budget too.
  InventoryEngine::Config cfg;
  cfg.retry.backoff_base_slots = -3;
  EXPECT_THROW((InventoryEngine{cfg, 1}), std::invalid_argument);
  cfg = InventoryEngine::Config{};
  cfg.slot_budget = -1;
  EXPECT_THROW((InventoryEngine{cfg, 1}), std::invalid_argument);

  // And the session validates both layers at construction.
  core::InventorySession::Config sess;
  sess.supervisor.enabled = true;
  sess.supervisor.ewma_alpha = 2.0;
  EXPECT_THROW(core::InventorySession{sess}, std::invalid_argument);
}

TEST(Fig16Ladder, DeltasCombineEnergyPerBitAndPassband) {
  const auto model =
      channel::UplinkSnrModel::ecocapsule(wave::materials::normal_concrete());
  const auto ladder = SupervisorConfig::fig16_ladder(
      model, {16000.0, 8000.0, 4000.0, 2000.0});
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_EQ(ladder[0].snr_delta_db, 0.0);
  // Every slower rung gains SNR, monotonically.
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].snr_delta_db, ladder[i - 1].snr_delta_db);
  }
  // 16 kb/s sits past the Fig. 16 knee, so stepping to 8 kb/s recovers
  // passband capture on top of the 3 dB energy-per-bit term.
  EXPECT_GT(ladder[1].snr_delta_db, 6.0);
  // Below the knee only the energy term is left: the 4k -> 2k step is
  // close to the pure 3 dB halving gain.
  EXPECT_NEAR(ladder[3].snr_delta_db - ladder[2].snr_delta_db, 3.0, 0.5);
}

TEST(LinkSupervisor, DegradesOnMissesAndPreemptivelyOnLowSnr) {
  LinkSupervisor sup(quick_config());
  sup.track(1);
  EXPECT_EQ(sup.state(1).ladder_index, 0);

  // alpha 0.6: one miss drops the EWMA to 0.4 < 0.55 -> immediate rung down.
  sup.observe(1, false, 0.0);
  EXPECT_EQ(sup.state(1).ladder_index, 1);
  EXPECT_EQ(sup.state(1).fallbacks, 1);

  // A delivered-but-marginal link (decode SNR below the floor) also steps
  // down, without losing a reading.
  LinkSupervisor sup2(quick_config());
  sup2.track(2);
  sup2.observe(2, true, 1.0);  // below degrade_snr_db = 3 dB
  EXPECT_EQ(sup2.state(2).ladder_index, 1);
  EXPECT_EQ(sup2.state(2).fallbacks, 1);
}

TEST(LinkSupervisor, ProbesUpAfterStreakAndBacksOffOnFailedProbe) {
  LinkSupervisor sup(quick_config());
  sup.track(1);
  sup.observe(1, false, 0.0);  // down to rung 1
  ASSERT_EQ(sup.state(1).ladder_index, 1);

  // probe_after = 3 clean deliveries at healthy SNR -> probe rung 0.
  for (int i = 0; i < 3; ++i) sup.observe(1, true, 20.0);
  EXPECT_EQ(sup.state(1).ladder_index, 0);
  EXPECT_TRUE(sup.state(1).probing);
  EXPECT_EQ(sup.state(1).probes, 1);

  // The probe fails: revoked immediately, and the streak requirement
  // doubles so the node stops oscillating at its rate ceiling.
  sup.observe(1, false, 0.0);
  EXPECT_EQ(sup.state(1).ladder_index, 1);
  EXPECT_EQ(sup.state(1).failed_probes, 1);
  EXPECT_EQ(sup.state(1).probe_streak_needed, 6);

  // A successful probe sticks and resets nothing but the streak counter.
  for (int i = 0; i < 6; ++i) sup.observe(1, true, 20.0);
  EXPECT_EQ(sup.state(1).ladder_index, 0);
  sup.observe(1, true, 20.0);
  EXPECT_EQ(sup.state(1).ladder_index, 0);
  EXPECT_FALSE(sup.state(1).probing);
}

TEST(LinkSupervisor, QuarantineEntryExponentialProbesAndReintegration) {
  SupervisorConfig cfg = quick_config();
  LinkSupervisor sup(cfg);
  sup.track(7);

  // Two misses walk the node to the ladder floor; the miss streak carries
  // across the descent, so the third consecutive miss (>= quarantine_after
  // = 2, now at the floor) triggers quarantine.
  sup.observe(7, false, 0.0);
  sup.observe(7, false, 0.0);
  ASSERT_EQ(sup.state(7).ladder_index, 2);
  EXPECT_FALSE(sup.state(7).quarantined);
  sup.observe(7, false, 0.0);
  EXPECT_TRUE(sup.state(7).quarantined);
  EXPECT_EQ(sup.state(7).quarantines, 1);

  // Sits out reintegration_base_polls = 2 polls, then probes once.
  EXPECT_FALSE(sup.admit(7));
  EXPECT_FALSE(sup.admit(7));
  EXPECT_TRUE(sup.admit(7));
  EXPECT_EQ(sup.state(7).skipped_polls, 2);
  EXPECT_EQ(sup.state(7).reintegration_probes, 1);

  // Failed probe: backoff doubles (2 -> 4), capped at 8.
  sup.observe(7, false, 0.0);
  EXPECT_TRUE(sup.state(7).quarantined);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(sup.admit(7));
  EXPECT_TRUE(sup.admit(7));
  sup.observe(7, false, 0.0);  // 4 -> 8
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(sup.admit(7));
  EXPECT_TRUE(sup.admit(7));
  sup.observe(7, false, 0.0);  // capped at 8
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(sup.admit(7));
  EXPECT_TRUE(sup.admit(7));

  // Successful probe reintegrates with a fresh link estimate.
  sup.observe(7, true, 10.0);
  EXPECT_FALSE(sup.state(7).quarantined);
  EXPECT_EQ(sup.state(7).reintegrations, 1);
  EXPECT_EQ(sup.state(7).ewma_success, 1.0);
  EXPECT_TRUE(sup.admit(7));
}

TEST(LinkSupervisor, SaveLoadRoundTripsMidCampaignState) {
  LinkSupervisor sup(quick_config());
  sup.track(1);
  sup.track(2);
  // Put node 1 mid-ladder with a probe pending and node 2 in quarantine.
  sup.observe(1, false, 0.0);
  sup.observe(1, true, 9.0);
  for (int i = 0; i < 4; ++i) sup.observe(2, false, 0.0);
  ASSERT_TRUE(sup.state(2).quarantined);

  dsp::ser::Writer w("sup-test v1");
  sup.save(w);

  LinkSupervisor restored(quick_config());
  dsp::ser::Reader r(w.payload(), "sup-test v1");
  restored.load(r);
  EXPECT_TRUE(r.exhausted());

  for (std::uint16_t id : {std::uint16_t{1}, std::uint16_t{2}}) {
    const NodeLinkState& a = sup.state(id);
    const NodeLinkState& b = restored.state(id);
    EXPECT_EQ(a.ladder_index, b.ladder_index);
    EXPECT_EQ(a.ewma_success, b.ewma_success);
    EXPECT_EQ(a.ewma_snr_db, b.ewma_snr_db);
    EXPECT_EQ(a.has_snr, b.has_snr);
    EXPECT_EQ(a.consecutive_ok, b.consecutive_ok);
    EXPECT_EQ(a.consecutive_miss, b.consecutive_miss);
    EXPECT_EQ(a.probing, b.probing);
    EXPECT_EQ(a.probe_streak_needed, b.probe_streak_needed);
    EXPECT_EQ(a.quarantined, b.quarantined);
    EXPECT_EQ(a.quarantine_wait, b.quarantine_wait);
    EXPECT_EQ(a.reintegration_backoff, b.reintegration_backoff);
    EXPECT_EQ(a.fallbacks, b.fallbacks);
    EXPECT_EQ(a.quarantines, b.quarantines);
  }

  // The restored supervisor continues the exact same trajectory.
  sup.observe(1, true, 9.0);
  restored.observe(1, true, 9.0);
  EXPECT_EQ(sup.state(1).ladder_index, restored.state(1).ladder_index);
  EXPECT_EQ(sup.state(1).ewma_success, restored.state(1).ewma_success);
}

TEST(InventoryEngine, SlotBudgetWatchdogCutsSessionShort) {
  // Many nodes, tiny budget: the watchdog must end the session early and
  // charge exactly one deadline trip, leaving the rest as give-ups.
  std::vector<std::unique_ptr<node::Firmware>> firmwares;
  std::vector<InventoriedNode> nodes;
  for (int i = 0; i < 6; ++i) {
    node::FirmwareConfig fc;
    fc.node_id = static_cast<std::uint16_t>(0x400 + i);
    firmwares.push_back(std::make_unique<node::Firmware>(fc, 99 + i));
    firmwares.back()->power_on();
    InventoriedNode n;
    n.firmware = firmwares.back().get();
    n.snr_db = 30.0;
    nodes.push_back(n);
  }
  InventoryEngine::Config cfg;
  cfg.q = 2;
  cfg.max_rounds = 8;
  cfg.retry.enabled = true;
  cfg.slot_budget = 3;
  InventoryEngine engine(cfg, 5);
  const InventoryResult r = engine.run(nodes);
  EXPECT_EQ(r.stats.deadline_trips, 1);
  EXPECT_LE(r.stats.slots + r.stats.backoff_slots, cfg.slot_budget);
  EXPECT_GT(r.stats.giveups, 0);

  // With no budget the same session completes every node.
  for (auto& fw : firmwares) fw->power_on();
  cfg.slot_budget = 0;
  InventoryEngine unlimited(cfg, 5);
  const InventoryResult full = unlimited.run(nodes);
  EXPECT_EQ(full.stats.deadline_trips, 0);
  EXPECT_EQ(full.inventoried_ids.size(), 6u);
}

TEST(InventorySession, SupervisorDisabledKeepsLegacyDrawSequence) {
  // A disabled supervisor must be completely inert: whatever is written
  // into the (disabled) supervisor config, the session's draw sequence —
  // and therefore every inventoried id — stays bit-identical.
  const auto run_once = [](bool tweak_disabled_supervisor) {
    core::InventorySession::Config cfg;
    cfg.structure = channel::structures::s3_common_wall();
    cfg.seed = 77;
    cfg.inventory.retry.enabled = true;
    cfg.fault = fault::FaultPlan::at_intensity(0.4);
    if (tweak_disabled_supervisor) {
      cfg.supervisor.ladder = reader::SupervisorConfig::default_ladder();
      cfg.supervisor.ewma_alpha = 0.9;
      cfg.supervisor.round_slot_budget = 7;
    }
    core::InventorySession session(cfg);
    for (int i = 0; i < 4; ++i) {
      core::DeployedNode n;
      n.node_id = static_cast<std::uint16_t>(0x500 + i);
      n.distance = 0.5 + 0.6 * static_cast<double>(i);
      session.deploy(n);
    }
    std::vector<std::uint16_t> ids;
    for (int p = 0; p < 6; ++p) {
      const auto r = session.collect(
          {static_cast<std::uint8_t>(node::SensorId::kStress)});
      ids.insert(ids.end(), r.inventoried_ids.begin(),
                 r.inventoried_ids.end());
    }
    return ids;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// The pinned tentpole regression. Five capsules at staggered depths run a
// 16 kb/s rung-0 link under a moderate fault plan: the fixed-bitrate
// campaign must lose the deep capsules (<60% of expected readings) while
// the supervised campaign walks them down the Fig. 16 ladder and delivers
// >95%. Fully deterministic: fixed seeds, sequential trials.
TEST(SupervisedCampaign, PinnedRecoveryRegression) {
  constexpr int kTrials = 12;
  constexpr int kNodes = 5;
  constexpr int kPolls = 60;

  const auto delivered_fraction = [&](bool supervised) {
    long delivered = 0, expected = 0;
    for (int t = 0; t < kTrials; ++t) {
      core::InventorySession::Config cfg;
      cfg.structure = channel::structures::s3_common_wall();
      cfg.snr_at_contact_db = 8.0;  // 16 kb/s rung-0 operation
      cfg.uplink.bitrate = 16000.0;
      cfg.inventory.q = 3;
      cfg.inventory.retry.enabled = true;
      cfg.fault = fault::FaultPlan::at_intensity(0.25);
      cfg.seed = dsp::trial_seed(0xeca9, static_cast<std::size_t>(t));
      if (supervised) {
        cfg.supervisor.enabled = true;
        cfg.supervisor.ladder = SupervisorConfig::fig16_ladder(
            channel::UplinkSnrModel::ecocapsule(
                wave::materials::normal_concrete()),
            {16000.0, 8000.0, 4000.0, 2000.0});
        cfg.supervisor.ewma_alpha = 0.6;
        cfg.supervisor.degrade_below = 0.55;
        cfg.supervisor.probe_after = 16;
        cfg.supervisor.round_slot_budget = 96;
      }
      core::InventorySession session(cfg);
      for (int i = 0; i < kNodes; ++i) {
        core::DeployedNode n;
        n.node_id = static_cast<std::uint16_t>(0x300 + i);
        n.distance = 0.5 + 0.5 * static_cast<double>(i);
        session.deploy(n);
      }
      for (int p = 0; p < kPolls; ++p) {
        const auto r = session.collect(
            {static_cast<std::uint8_t>(node::SensorId::kStress)});
        for (int i = 0; i < kNodes; ++i) {
          const auto id = static_cast<std::uint16_t>(0x300 + i);
          ++expected;
          if (std::find(r.inventoried_ids.begin(), r.inventoried_ids.end(),
                        id) != r.inventoried_ids.end()) {
            ++delivered;
          }
        }
      }
    }
    return static_cast<double>(delivered) / static_cast<double>(expected);
  };

  const double fixed = delivered_fraction(false);
  const double supervised = delivered_fraction(true);
  EXPECT_LT(fixed, 0.60);
  EXPECT_GT(supervised, 0.95);
}

}  // namespace
}  // namespace ecocap::reader
