#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/ber_harness.hpp"
#include "core/link_simulator.hpp"
#include "core/thread_pool.hpp"
#include "core/trial_runner.hpp"
#include "dsp/rng.hpp"

namespace ecocap::core {
namespace {

TEST(TrialRng, SamePairSameStream) {
  dsp::Rng a = dsp::trial_rng(7, 123);
  dsp::Rng b = dsp::trial_rng(7, 123);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(TrialRng, NearbyPairsGetDistantSeeds) {
  // Neither incrementing the trial index nor the base seed may collide; the
  // whole parallel-determinism story rests on stream independence.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      seeds.insert(dsp::trial_seed(s, t));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 64u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.parallel_for(ran.size(), [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

/// Floating-point accumulation whose result depends on association order:
/// summing gaussians of wildly different magnitudes. Bit-identical results
/// across pool widths prove the block-merge order is thread-count-free.
struct FloatAcc {
  double sum = 0.0;
  double weighted = 0.0;
  std::uint64_t checksum = 0;  // order-sensitive via multiply-accumulate
};

FloatAcc run_float_trials(ThreadPool& pool, std::size_t block_size) {
  const TrialRunner runner(pool, block_size);
  return runner.run<FloatAcc>(
      1000, /*base_seed=*/99,
      [](std::size_t t, dsp::Rng& rng, FloatAcc& acc) {
        const double g = rng.gaussian();
        acc.sum += g * (1.0 + static_cast<double>(t % 13) * 1e6);
        acc.weighted += g / (1.0 + static_cast<double>(t));
        acc.checksum = acc.checksum * 0x9e3779b97f4a7c15ULL +
                       static_cast<std::uint64_t>(t + 1);
      },
      [](FloatAcc& into, const FloatAcc& from) {
        into.sum += from.sum;
        into.weighted += from.weighted;
        into.checksum = into.checksum * 31 + from.checksum;
      });
}

TEST(TrialRunner, BitIdenticalAcrossThreadCounts) {
  ThreadPool one(1), two(2), eight(8);
  const FloatAcc r1 = run_float_trials(one, 64);
  const FloatAcc r2 = run_float_trials(two, 64);
  const FloatAcc r8 = run_float_trials(eight, 64);
  // EXPECT_EQ on doubles is exact — that is the point.
  EXPECT_EQ(r1.sum, r2.sum);
  EXPECT_EQ(r1.sum, r8.sum);
  EXPECT_EQ(r1.weighted, r2.weighted);
  EXPECT_EQ(r1.weighted, r8.weighted);
  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.checksum, r8.checksum);
}

TEST(TrialRunner, RepeatedRunsAreIdentical) {
  ThreadPool pool(8);
  const FloatAcc a = run_float_trials(pool, 64);
  const FloatAcc b = run_float_trials(pool, 64);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.weighted, b.weighted);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(TrialRunner, ZeroTrialsYieldsIdentity) {
  ThreadPool pool(2);
  const TrialRunner runner(pool);
  const FloatAcc r = runner.run<FloatAcc>(
      0, 1, [](std::size_t, dsp::Rng&, FloatAcc&) { FAIL(); },
      [](FloatAcc&, const FloatAcc&) { FAIL(); });
  EXPECT_EQ(r.sum, 0.0);
  EXPECT_EQ(r.checksum, 0u);
}

TEST(BerHarness, AggregatesBitIdenticalAcrossThreadCounts) {
  BerConfig cfg;
  cfg.snr_db = 5.0;
  cfg.total_bits = 64000;
  cfg.seed = 2026;
  ThreadPool one(1), two(2), eight(8);
  const BerResult r1 = fm0_ber_monte_carlo(cfg, one);
  const BerResult r2 = fm0_ber_monte_carlo(cfg, two);
  const BerResult r8 = fm0_ber_monte_carlo(cfg, eight);
  EXPECT_EQ(r1.bits, r2.bits);
  EXPECT_EQ(r1.errors, r2.errors);
  EXPECT_EQ(r1.bits, r8.bits);
  EXPECT_EQ(r1.errors, r8.errors);
  // And the parallel engine must agree statistically with the sequential
  // reference (different streams, same channel): both land near Q(sqrt(2s)).
  const BerResult seq = fm0_ber_monte_carlo_sequential(cfg);
  EXPECT_NEAR(r1.ber(), seq.ber(), 0.01);
}

TEST(UplinkSweep, WaveformTrialsDecodeAndReproduce) {
  SystemConfig cfg = default_system();
  cfg.channel.distance = 0.15;
  cfg.channel.noise_sigma = 1e-4;
  cfg.seed = 31;
  dsp::Rng rng(17);
  const phy::Bits payload = phy::random_bits(24, rng);
  const UplinkSweepResult a = uplink_sweep(cfg, payload, 3);
  EXPECT_EQ(a.trials, 3u);
  EXPECT_EQ(a.powered, 3u);   // short range, quiet channel: always boots
  EXPECT_EQ(a.decoded, 3u);
  EXPECT_GT(a.mean_snr_db(), 5.0);
  // Rerun: per-trial counter-derived seeds make the sweep reproducible.
  const UplinkSweepResult b = uplink_sweep(cfg, payload, 3);
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.snr_db_sum, b.snr_db_sum);
}

TEST(BerHarness, ParallelMatchesSequentialStatistics) {
  // Monotone-in-SNR sanity on the parallel path.
  BerConfig cfg;
  cfg.total_bits = 30000;
  double prev = 1.0;
  for (double snr : {0.0, 4.0, 8.0}) {
    cfg.snr_db = snr;
    const double ber = fm0_ber_monte_carlo(cfg).ber();
    EXPECT_LE(ber, prev + 0.01);
    prev = ber;
  }
}

}  // namespace
}  // namespace ecocap::core
