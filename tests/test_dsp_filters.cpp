#include <gtest/gtest.h>

#include <cmath>

#include "dsp/biquad.hpp"
#include "dsp/decimate.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fir.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/window.hpp"

namespace ecocap::dsp {
namespace {

constexpr Real kFs = 1.0e6;

Real tone_gain_through(const Signal& h, Real f) {
  const Signal x = tone(kFs, f, 20000, 1.0);
  const Signal y = filter_zero_phase(h, x);
  // Compare RMS over the center to avoid edge transients.
  const std::size_t n = x.size();
  const Signal yc(y.begin() + static_cast<long>(n / 4),
                  y.begin() + static_cast<long>(3 * n / 4));
  const Signal xc(x.begin() + static_cast<long>(n / 4),
                  x.begin() + static_cast<long>(3 * n / 4));
  return rms(yc) / rms(xc);
}

TEST(Fir, LowpassPassesAndStops) {
  const Signal h = design_lowpass(kFs, 50.0e3, 101);
  EXPECT_NEAR(tone_gain_through(h, 10.0e3), 1.0, 0.02);
  EXPECT_LT(tone_gain_through(h, 200.0e3), 0.01);
}

TEST(Fir, HighpassPassesAndStops) {
  const Signal h = design_highpass(kFs, 50.0e3, 101);
  EXPECT_LT(tone_gain_through(h, 10.0e3), 0.02);
  EXPECT_NEAR(tone_gain_through(h, 200.0e3), 1.0, 0.02);
}

TEST(Fir, BandpassSelective) {
  const Signal h = design_bandpass(kFs, 180.0e3, 280.0e3, 151);
  EXPECT_NEAR(tone_gain_through(h, 230.0e3), 1.0, 0.05);
  EXPECT_LT(tone_gain_through(h, 50.0e3), 0.02);
  EXPECT_LT(tone_gain_through(h, 420.0e3), 0.02);
}

TEST(Fir, BandstopRejectsBand) {
  const Signal h = design_bandstop(kFs, 220.0e3, 240.0e3, 301);
  EXPECT_LT(tone_gain_through(h, 230.0e3), 0.1);
  EXPECT_NEAR(tone_gain_through(h, 100.0e3), 1.0, 0.05);
}

TEST(Fir, DesignValidatesCutoff) {
  EXPECT_THROW((void)design_lowpass(kFs, 0.0, 31), std::invalid_argument);
  EXPECT_THROW((void)design_lowpass(kFs, 0.6e6, 31), std::invalid_argument);
  EXPECT_THROW((void)design_bandpass(kFs, 100e3, 90e3, 31),
               std::invalid_argument);
}

TEST(Fir, StreamingMatchesBatch) {
  const Signal h = design_lowpass(kFs, 50.0e3, 31);
  const Signal x = tone(kFs, 30.0e3, 500, 1.0);
  FirFilter f1(h), f2(h);
  Signal one_by_one(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) one_by_one[i] = f1.process(x[i]);
  const Signal batch = f2.process(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(one_by_one[i], batch[i], 1e-12);
  }
}

TEST(Fir, ResetClearsState) {
  const Signal h = design_lowpass(kFs, 50.0e3, 31);
  FirFilter f(h);
  (void)f.process(Signal(100, 1.0));
  f.reset();
  // After reset, the first output of an impulse equals h[0].
  EXPECT_NEAR(f.process(1.0), h[0], 1e-15);
}

TEST(Biquad, LowpassAttenuatesHighFrequencies) {
  Biquad lp = Biquad::lowpass(kFs, 50.0e3, 0.707);
  EXPECT_NEAR(lp.magnitude_at(kFs, 1.0e3), 1.0, 0.01);
  EXPECT_LT(lp.magnitude_at(kFs, 400.0e3), 0.05);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  Biquad bp = Biquad::bandpass(kFs, 230.0e3, 10.0);
  const Real at_center = bp.magnitude_at(kFs, 230.0e3);
  EXPECT_GT(at_center, bp.magnitude_at(kFs, 180.0e3) * 3.0);
  EXPECT_GT(at_center, bp.magnitude_at(kFs, 280.0e3) * 3.0);
}

TEST(Biquad, NotchKillsCenter) {
  Biquad n = Biquad::notch(kFs, 230.0e3, 30.0);
  EXPECT_LT(n.magnitude_at(kFs, 230.0e3), 0.01);
  EXPECT_NEAR(n.magnitude_at(kFs, 100.0e3), 1.0, 0.05);
}

TEST(Biquad, InvalidDesignThrows) {
  EXPECT_THROW((void)Biquad::lowpass(kFs, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)Biquad::lowpass(kFs, 0.6e6, 1.0), std::invalid_argument);
  EXPECT_THROW((void)Biquad::lowpass(kFs, 1e3, 0.0), std::invalid_argument);
}

TEST(Biquad, ProcessMatchesMagnitudeResponse) {
  Biquad bp = Biquad::bandpass(kFs, 100.0e3, 5.0);
  const Signal x = tone(kFs, 100.0e3, 50000, 1.0);
  const Signal y = bp.process(x);
  const Signal tail(y.begin() + 10000, y.end());
  EXPECT_NEAR(rms(tail) * std::sqrt(2.0),
              bp.magnitude_at(kFs, 100.0e3), 0.02);
}

TEST(OnePole, StepResponseReachesTarget) {
  OnePoleLowpass lp(kFs, 1.0e3);
  Real y = 0.0;
  for (int i = 0; i < 100000; ++i) y = lp.process(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(Window, HannEndsAtZero) {
  const Signal w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[31], 1.0, 0.01);
}

TEST(Window, ApplySizeChecked) {
  Signal x(10, 1.0);
  const Signal w = make_window(WindowKind::kHamming, 8);
  EXPECT_THROW(apply_window(x, w), std::invalid_argument);
}

TEST(Envelope, RecoversAmplitudeModulation) {
  // 230 kHz carrier, 1 kHz square AM.
  const std::size_t n = 200000;
  Signal x(n);
  Oscillator osc(kFs, 230.0e3);
  for (std::size_t i = 0; i < n; ++i) {
    const bool high = (i / 500) % 2 == 0;  // 1 kHz toggling at 1 MS/s
    x[i] = osc.next(high ? 1.0 : 0.2);
  }
  EnvelopeDetector det(kFs, 20.0e3);
  const Signal env = det.process(x);
  // In the middle of a high half-period the envelope should be near the
  // rectified mean of a unit sine (2/pi), and near 0.2*2/pi in low parts.
  EXPECT_NEAR(env[250], 2.0 / 3.14159, 0.1);
  EXPECT_NEAR(env[750], 0.2 * 2.0 / 3.14159, 0.06);
}

TEST(Slicer, BinarizesWithHysteresis) {
  HysteresisSlicer s(0.6, 0.4);
  std::vector<bool> out;
  // Ramp up then down; hysteresis should avoid chattering near threshold.
  for (int i = 0; i < 100; ++i) out.push_back(s.process(1.0));
  EXPECT_TRUE(out.back());
  for (int i = 0; i < 100; ++i) out.push_back(s.process(0.1));
  EXPECT_FALSE(out.back());
}

TEST(Decimate, ReducesLengthAndKeepsLowTone) {
  const Signal x = tone(kFs, 5.0e3, 40000, 1.0);
  const Signal y = decimate(x, kFs, 10);
  EXPECT_NEAR(static_cast<double>(y.size()),
              static_cast<double>(x.size()) / 10.0, 2.0);
  EXPECT_NEAR(rms(y), rms(x), 0.03);
}

TEST(Decimate, FactorOneCopies) {
  const Signal x = tone(kFs, 5.0e3, 100, 1.0);
  EXPECT_EQ(decimate(x, kFs, 1), x);
  EXPECT_THROW((void)decimate(x, kFs, 0), std::invalid_argument);
}

TEST(MovingAverage, SmoothsConstantExactly) {
  const Signal x(100, 3.0);
  const Signal y = moving_average(x, 9);
  for (Real v : y) EXPECT_NEAR(v, 3.0, 1e-12);
}

/// Property: designed FIR low-pass gain is monotone-ish: pass < knee < stop.
class FirCutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(FirCutoffSweep, PassbandUnityStopbandDead) {
  const Real fc = GetParam();
  const Signal h = design_lowpass(kFs, fc, 201);
  EXPECT_NEAR(tone_gain_through(h, fc * 0.3), 1.0, 0.03);
  EXPECT_LT(tone_gain_through(h, fc * 3.0), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, FirCutoffSweep,
                         ::testing::Values(10.0e3, 30.0e3, 60.0e3, 120.0e3));

}  // namespace
}  // namespace ecocap::dsp
