#include <gtest/gtest.h>

#include "node/power_model.hpp"
#include "node/sensors.hpp"
#include "node/shell.hpp"

namespace ecocap::node {
namespace {

TEST(PowerModel, StandbyMatchesPaper) {
  // Paper §5.2: 80.1 uW standby.
  const PowerModel pm;
  EXPECT_NEAR(pm.standby().total() * 1e6, 80.1, 0.2);
}

TEST(PowerModel, ActiveNear360uW) {
  const PowerModel pm;
  // Fig. 13: active power fluctuates around 360 uW regardless of bitrate.
  for (double r : {1000.0, 2000.0, 4000.0, 8000.0}) {
    const double total = pm.active(r).total() * 1e6;
    EXPECT_NEAR(total, 360.0, 12.0) << r;
  }
}

TEST(PowerModel, ActiveNearlyFlatInBitrate) {
  const PowerModel pm;
  const double p1 = pm.active(1000.0).total();
  const double p8 = pm.active(8000.0).total();
  EXPECT_LT((p8 - p1) / p1, 0.05);  // < 5% rise across the Fig. 13 axis
  EXPECT_GT(p8, p1);                // but strictly increasing (toggle energy)
}

TEST(PowerModel, SleepIsSubMicrowatt) {
  const PowerModel pm;
  EXPECT_NEAR(pm.sleep().total() * 1e6, 0.9, 0.05);
}

TEST(PowerModel, BlfTogglingAddsPower) {
  const PowerModel pm;
  EXPECT_GT(pm.active(1000.0, 8000.0).total(), pm.active(1000.0, 0.0).total());
}

TEST(Shell, Eq4PressureDifference) {
  const Shell shell;
  // dP = rho g h - P_air; at h = 0 the shell is *under*-pressured by 1 atm.
  EXPECT_NEAR(shell.pressure_difference(0.0), -kStandardAtmosphere, 1e-6);
  EXPECT_NEAR(shell.pressure_difference(100.0, 2300.0),
              2300.0 * 9.81 * 100.0 - 101325.0, 1e-3);
  EXPECT_THROW((void)shell.pressure_difference(-1.0), std::invalid_argument);
}

TEST(Shell, ResinSurvives195Meters) {
  // Paper §4.1: dP_max ~ 4.3 MPa -> h_max ~ 195 m (~55 floors).
  const Shell shell;
  EXPECT_NEAR(shell.max_building_height(2300.0), 195.0, 3.0);
  EXPECT_TRUE(shell.survives(190.0, 2300.0));
  EXPECT_FALSE(shell.survives(200.0, 2300.0));
}

TEST(Shell, SteelSurvivesKilometers) {
  // Paper §4.1: alloy steel dP_max ~ 115.2 MPa -> h_max ~ 4985 m.
  ShellConfig cfg;
  cfg.material = ShellMaterial::alloy_steel();
  const Shell shell(cfg);
  EXPECT_NEAR(shell.max_building_height(2360.0), 4985.0, 60.0);
}

TEST(Shell, MembraneStressBelowTensileAtLimit) {
  // Thin-shell cross-check: at dP_max the membrane stress must not exceed
  // the resin's tensile strength.
  const Shell shell;
  const double sigma = shell.membrane_stress(4.3e6);
  EXPECT_LT(sigma, ShellMaterial::sla_resin().tensile_strength);
}

TEST(Shell, DeformationWithinTolerance) {
  const Shell shell;
  // <= 5% deformation at the rated pressure (the paper's FEA criterion).
  EXPECT_LE(shell.deformation_fraction(4.3e6), 0.05);
}

TEST(Shell, SurvivesCastingPour) {
  const Shell shell;
  // A 3 m fresh pour exerts ~70 kPa — far below the 4.3 MPa limit. (This is
  // the property the paper verified by CT-scanning the cast blocks.)
  EXPECT_TRUE(shell.survives_casting(3.0));
  EXPECT_FALSE(shell.survives_casting(200.0));
}

TEST(Shell, InvalidGeometryThrows) {
  ShellConfig cfg;
  cfg.wall_thickness = 0.0;
  EXPECT_THROW(Shell{cfg}, std::invalid_argument);
}

TEST(Sensors, SuiteCoversPaperModalities) {
  const auto suite = default_sensor_suite();
  ASSERT_EQ(suite.size(), 6u);
  bool has_temp = false, has_hum = false, has_strain = false;
  for (const auto& s : suite) {
    if (s->id() == SensorId::kTemperature) has_temp = true;
    if (s->id() == SensorId::kHumidity) has_hum = true;
    if (s->id() == SensorId::kStrainX) has_strain = true;
  }
  EXPECT_TRUE(has_temp);
  EXPECT_TRUE(has_hum);
  EXPECT_TRUE(has_strain);
}

TEST(Sensors, TemperatureAccurateAndClamped) {
  Aht10Temperature t;
  dsp::Rng rng(1);
  ConcreteEnvironment env;
  env.temperature_c = 31.7;
  double sum = 0.0;
  for (int i = 0; i < 200; ++i) sum += t.sample(env, rng);
  EXPECT_NEAR(sum / 200.0, 31.7, 0.1);
  env.temperature_c = 500.0;  // out of the AHT10 range
  EXPECT_LE(t.sample(env, rng), 85.5);
}

TEST(Sensors, HumidityBounded) {
  Aht10Humidity h;
  dsp::Rng rng(2);
  ConcreteEnvironment env;
  env.relative_humidity = 99.5;
  for (int i = 0; i < 100; ++i) {
    const double v = h.sample(env, rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Sensors, StrainGaugeAxesIndependent) {
  BridgeStrainGauge x(true), y(false);
  dsp::Rng rng(3);
  ConcreteEnvironment env;
  env.strain_x = 500.0e-6;   // 500 microstrain
  env.strain_y = -200.0e-6;
  double sx = 0.0, sy = 0.0;
  for (int i = 0; i < 200; ++i) {
    sx += x.sample(env, rng);
    sy += y.sample(env, rng);
  }
  EXPECT_NEAR(sx / 200.0, 500.0, 5.0);
  EXPECT_NEAR(sy / 200.0, -200.0, 5.0);
  EXPECT_EQ(x.id(), SensorId::kStrainX);
  EXPECT_EQ(y.id(), SensorId::kStrainY);
}

TEST(Sensors, StrainClampsAtRange) {
  BridgeStrainGauge x(true);
  dsp::Rng rng(4);
  ConcreteEnvironment env;
  env.strain_x = 0.01;  // 10000 ue, beyond the +-2000 ue bridge range
  EXPECT_LE(x.sample(env, rng), 2000.1);
}

TEST(Sensors, AccelerometerQuantizes) {
  Accelerometer a;
  dsp::Rng rng(5);
  ConcreteEnvironment env;
  env.acceleration = 0.0213;
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) sum += a.sample(env, rng);
  EXPECT_NEAR(sum / 500.0, 0.0213, 0.005);
}

TEST(Sensors, StressTracksEnvironment) {
  StressSensor s;
  dsp::Rng rng(6);
  ConcreteEnvironment env;
  env.stress_mpa = -63.2;
  double sum = 0.0;
  for (int i = 0; i < 200; ++i) sum += s.sample(env, rng);
  EXPECT_NEAR(sum / 200.0, -63.2, 0.1);
}

}  // namespace
}  // namespace ecocap::node
