#include <gtest/gtest.h>

#include <cmath>

#include "node/frontend.hpp"
#include "node/energy_manager.hpp"
#include "node/harvester.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/carrier.hpp"
#include "phy/pie.hpp"

namespace ecocap::node {
namespace {

TEST(Harvester, OpenCircuitVoltage) {
  const Harvester h;
  // 4 stages, 0.2 V diode drop: Voc = 8 * (Vin - 0.2).
  EXPECT_NEAR(h.open_circuit_voltage(0.5), 2.4, 1e-9);
  EXPECT_NEAR(h.open_circuit_voltage(2.0), 14.4, 1e-9);
  EXPECT_EQ(h.open_circuit_voltage(0.1), 0.0);  // below the diode drops
}

TEST(Harvester, ColdStartMatchesFig14) {
  const Harvester h;
  // Paper Fig. 14: ~55 ms at the 0.5 V minimum, ~4.4 ms at 2 V.
  const auto t_min = h.cold_start_time(0.5);
  ASSERT_TRUE(t_min.has_value());
  EXPECT_NEAR(*t_min * 1e3, 55.0, 6.0);

  const auto t_2v = h.cold_start_time(2.0);
  ASSERT_TRUE(t_2v.has_value());
  EXPECT_NEAR(*t_2v * 1e3, 4.4, 1.0);
}

TEST(Harvester, ColdStartMonotoneInVoltage) {
  const Harvester h;
  Real prev = 1e9;
  for (Real v : {0.5, 0.8, 1.0, 1.5, 2.0, 3.0, 5.0}) {
    const auto t = h.cold_start_time(v);
    ASSERT_TRUE(t.has_value()) << v;
    EXPECT_LT(*t, prev) << v;
    prev = *t;
  }
}

TEST(Harvester, MinimumActivationNearHalfVolt) {
  const Harvester h;
  // Paper: 500 mV is the minimum activation voltage.
  EXPECT_LT(h.minimum_activation_voltage(), 0.5);
  EXPECT_GT(h.minimum_activation_voltage(), 0.40);
  EXPECT_FALSE(h.cold_start_time(0.40).has_value());
  EXPECT_TRUE(h.cold_start_time(0.50).has_value());
}

TEST(Harvester, StreamingChargeReachesPrediction) {
  Harvester h;
  const auto predicted = h.cold_start_time(1.0);
  ASSERT_TRUE(predicted.has_value());
  // Step in 0.1 ms increments until powered.
  Real t = 0.0;
  while (!h.mcu_powered() && t < 1.0) {
    h.step(1e-4, 1.0);
    t += 1e-4;
  }
  EXPECT_TRUE(h.mcu_powered());
  EXPECT_NEAR(t, *predicted, 5e-4);
}

TEST(Harvester, BrownOutOnLoadWithoutInput) {
  Harvester h;
  // Charge up...
  for (int i = 0; i < 2000; ++i) h.step(1e-4, 2.0);
  ASSERT_TRUE(h.mcu_powered());
  // ...then pull a heavy load with no input: the cap droops, MCU browns out.
  for (int i = 0; i < 20000 && h.mcu_powered(); ++i) {
    h.step(1e-4, 0.0, 5.0e-3);
  }
  EXPECT_FALSE(h.mcu_powered());
}

TEST(Harvester, StandbyLoadSustainedByWeakInput) {
  Harvester h;
  for (int i = 0; i < 4000; ++i) h.step(1e-4, 2.0);
  ASSERT_TRUE(h.mcu_powered());
  // 80 uW at 1.8 V ~ 45 uA: a 0.6 V input sustains it indefinitely.
  for (int i = 0; i < 50000; ++i) h.step(1e-4, 0.6, 45e-6);
  EXPECT_TRUE(h.mcu_powered());
}

TEST(Harvester, ResetClearsState) {
  Harvester h;
  for (int i = 0; i < 2000; ++i) h.step(1e-4, 2.0);
  h.reset();
  EXPECT_FALSE(h.mcu_powered());
  EXPECT_EQ(h.cap_voltage(), 0.0);
}

TEST(Harvester, InvalidConfigThrows) {
  HarvesterConfig cfg;
  cfg.stages = 0;
  EXPECT_THROW(Harvester{cfg}, std::invalid_argument);
  Harvester ok;
  EXPECT_THROW(ok.step(0.0, 1.0), std::invalid_argument);
}


TEST(EnergyManager, HarvestPowerGrowsWithInput) {
  const EnergyManager em;
  EXPECT_EQ(em.harvest_power(0.1), 0.0);  // below the diode drops
  EXPECT_GT(em.harvest_power(1.0), 0.0);
  EXPECT_GT(em.harvest_power(2.0), em.harvest_power(1.0));
}

TEST(EnergyManager, DutyCycleBounds) {
  const EnergyManager em;
  // Plenty of input: continuous operation.
  EXPECT_DOUBLE_EQ(em.sustainable_duty(3.0, 1000.0), 1.0);
  EXPECT_TRUE(em.continuous_operation(3.0, 1000.0));
  // Just above the standby threshold: partial duty.
  const double v_thresh = em.standby_threshold_voltage();
  const double duty = em.sustainable_duty(v_thresh + 0.03, 1000.0);
  EXPECT_GT(duty, 0.0);
  EXPECT_LT(duty, 1.0);
  // Below standby: zero.
  EXPECT_DOUBLE_EQ(em.sustainable_duty(v_thresh - 0.05, 1000.0), 0.0);
}

TEST(EnergyManager, StandbyThresholdBelowColdStart) {
  // Staying awake is cheaper than booting: the standby threshold must sit
  // below the Fig. 14 activation voltage.
  const EnergyManager em;
  const Harvester h;
  EXPECT_LT(em.standby_threshold_voltage(),
            h.minimum_activation_voltage() + 0.1);
  EXPECT_GT(em.standby_threshold_voltage(), 0.2);
}

TEST(EnergyManager, RechargeTimeScalesWithBurst) {
  const EnergyManager em;
  const double v = em.standby_threshold_voltage() + 0.05;
  const auto r1 = em.recharge_time(v, 0.1, 1000.0);
  const auto r2 = em.recharge_time(v, 0.2, 1000.0);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_NEAR(*r2, 2.0 * *r1, 1e-9);
  // No recharge needed when harvesting beats the active draw.
  EXPECT_DOUBLE_EQ(*em.recharge_time(3.0, 0.1, 1000.0), 0.0);
  // Unsustainable input: nullopt.
  EXPECT_FALSE(em.recharge_time(0.2, 0.1, 1000.0).has_value());
}

TEST(Frontend, DemodulatesFskPie) {
  // Full node-side receive path: FSK downlink -> band-limited channel
  // surrogate -> envelope -> slicer -> PIE decode.
  const dsp::Real fs = 2.0e6;
  phy::PieParams pie;
  const phy::Bits payload{1, 0, 1, 1, 0, 0, 1, 0};
  const dsp::Signal baseband = phy::pie_encode(payload, pie, fs);
  phy::CarrierParams cp;
  cp.fs = fs;
  dsp::Signal wave = phy::modulate_downlink(
      baseband, cp, phy::DownlinkScheme::kFskOffResonance);
  // Surrogate concrete: the off-resonant tone is suppressed 5x.
  dsp::Biquad resonator = dsp::Biquad::bandpass(fs, 230.0e3, 10.0);
  wave = resonator.process(wave);

  AnalogFrontend fe(fs);
  const std::vector<bool> levels = fe.demodulate(wave);
  const auto decoded = phy::pie_decode(levels, fs, payload.size(), pie);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

TEST(Frontend, EnvelopeTracksAmplitude) {
  const dsp::Real fs = 2.0e6;
  AnalogFrontend fe(fs);
  const dsp::Signal x = dsp::tone(fs, 230.0e3, 100000, 2.0);
  const dsp::Signal env = fe.envelope(x);
  // Steady-state envelope of |2 sin| is 2*2/pi.
  EXPECT_NEAR(env.back(), 2.0 * 2.0 / 3.14159265, 0.12);
}

/// Property sweep: cold start succeeds across Fig. 14's voltage axis and
/// the time matches the analytic RC crossing.
class ColdStartSweep : public ::testing::TestWithParam<double> {};

TEST_P(ColdStartSweep, AnalyticAndStreamingAgree) {
  Harvester h;
  const auto t = h.cold_start_time(GetParam());
  ASSERT_TRUE(t.has_value());
  Real elapsed = 0.0;
  while (!h.mcu_powered() && elapsed < 0.2) {
    h.step(5e-5, GetParam());
    elapsed += 5e-5;
  }
  EXPECT_TRUE(h.mcu_powered());
  EXPECT_NEAR(elapsed, *t, std::max(0.002, 0.1 * *t));
}

INSTANTIATE_TEST_SUITE_P(Voltages, ColdStartSweep,
                         ::testing::Values(0.5, 0.75, 1.0, 1.5, 2.0, 3.0,
                                           4.0, 5.0));

}  // namespace
}  // namespace ecocap::node
