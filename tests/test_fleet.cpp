// Fleet engine + telemetry store suite: store semantics (tiers, ring wrap,
// percentiles), sharded-fleet determinism across worker and shard counts,
// kill-and-resume from the per-shard checkpoint files, and the concurrent
// ingest/query stress the TSan CI job exercises (torn reads would break the
// value == f(node, t) invariant every stored word carries).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "fleet/fleet_engine.hpp"
#include "fleet/telemetry_store.hpp"

namespace ecocap::fleet {
namespace {

TelemetryStore::Config small_store(std::size_t nodes, std::size_t raw = 8) {
  TelemetryStore::Config cfg;
  cfg.nodes = nodes;
  cfg.raw_capacity = raw;
  cfg.minute_capacity = 8;
  cfg.hour_capacity = 4;
  return cfg;
}

TEST(TelemetryStore, LatestRoundTripsExactly) {
  TelemetryStore store(small_store(2));
  EXPECT_FALSE(store.latest(0).has_value());
  store.append(0, 42, -55.25f);
  const auto r = store.latest(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->t_sec, 42u);
  EXPECT_EQ(r->value, -55.25f);
  EXPECT_FALSE(store.latest(1).has_value());
  EXPECT_EQ(store.total_appends(), 1u);
}

TEST(TelemetryStore, RawRingKeepsMostRecentWindow) {
  TelemetryStore store(small_store(1, /*raw=*/4));
  for (std::uint32_t t = 0; t < 10; ++t) {
    store.append(0, t, static_cast<float>(t));
  }
  std::vector<TelemetryStore::Reading> out;
  const std::size_t n =
      store.range(0, TelemetryStore::Tier::kRaw, 0, 100, out);
  ASSERT_EQ(n, 4u);  // capacity 4: entries 6..9 survive
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].t_sec, 6u + i);
    EXPECT_EQ(out[i].value, static_cast<float>(6 + i));
  }
}

TEST(TelemetryStore, RangeFiltersByTime) {
  TelemetryStore store(small_store(1, /*raw=*/16));
  for (std::uint32_t t = 0; t < 10; ++t) store.append(0, t * 10, 1.0f);
  std::vector<TelemetryStore::Reading> out;
  EXPECT_EQ(store.range(0, TelemetryStore::Tier::kRaw, 30, 60, out), 3u);
  for (const auto& r : out) {
    EXPECT_GE(r.t_sec, 30u);
    EXPECT_LT(r.t_sec, 60u);
  }
}

TEST(TelemetryStore, MinuteAndHourTiersDownsample) {
  TelemetryStore store(small_store(1, /*raw=*/256));
  // Two readings per minute for 3 minutes: minute means are (v0+v1)/2.
  for (std::uint32_t m = 0; m < 3; ++m) {
    store.append(0, m * 60 + 10, static_cast<float>(2 * m));
    store.append(0, m * 60 + 40, static_cast<float>(2 * m + 2));
  }
  store.flush(0);
  std::vector<TelemetryStore::Reading> minutes;
  ASSERT_EQ(store.range(0, TelemetryStore::Tier::kMinute, 0, 1000, minutes),
            3u);
  for (std::uint32_t m = 0; m < 3; ++m) {
    EXPECT_EQ(minutes[m].t_sec, m * 60);  // stamped at bucket start
    EXPECT_EQ(minutes[m].value, static_cast<float>(2 * m + 1));
  }
  std::vector<TelemetryStore::Reading> hours;
  ASSERT_EQ(store.range(0, TelemetryStore::Tier::kHour, 0, 4000, hours), 1u);
  EXPECT_EQ(hours[0].t_sec, 0u);
  EXPECT_EQ(hours[0].value, 3.0f);  // mean of 0,2,2,4,4,6
}

TEST(TelemetryStore, FlushIsIdempotentAndReopens) {
  TelemetryStore store(small_store(1));
  store.append(0, 5, 1.0f);
  store.flush(0);
  store.flush(0);  // no double entry
  std::vector<TelemetryStore::Reading> minutes;
  EXPECT_EQ(store.range(0, TelemetryStore::Tier::kMinute, 0, 100, minutes),
            1u);
  store.append(0, 65, 3.0f);
  store.flush(0);
  minutes.clear();
  EXPECT_EQ(store.range(0, TelemetryStore::Tier::kMinute, 0, 100, minutes),
            2u);
}

TEST(TelemetryStore, FleetPercentilesOverLatest) {
  TelemetryStore store(small_store(10));
  for (std::size_t n = 0; n < 5; ++n) {
    store.append(n, 1, static_cast<float>(n));  // 0..4; nodes 5..9 silent
  }
  std::vector<float> scratch;
  const auto h = store.fleet_percentiles(scratch);
  EXPECT_EQ(h.nodes_reporting, 5u);
  EXPECT_EQ(h.p50, 2.0f);
  EXPECT_EQ(h.max, 4.0f);
}

// ---------------------------------------------------------------------------
// Fleet engine determinism

FleetEngine::Config small_fleet(TelemetryStore* store = nullptr) {
  FleetEngine::Config cfg;
  cfg.structures = 10;
  cfg.seed = 77;
  cfg.telemetry = store;
  cfg.campaign.days = 0.25;
  cfg.campaign.step_minutes = 5.0;
  cfg.campaign.capsule_count = 2;
  cfg.campaign.capsule_poll_hours = 3.0;
  cfg.campaign.retry.enabled = true;
  return cfg;
}

TEST(FleetEngine, AggregatesBitIdenticalAcrossWorkerCounts) {
  std::string reference;
  for (const unsigned workers : {1u, 2u, 8u}) {
    core::ThreadPool pool(workers);
    FleetEngine engine(small_fleet(), pool);
    const FleetResult result = engine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.structures_completed, 10u);
    if (reference.empty()) {
      reference = result.fingerprint();
      EXPECT_GT(result.totals.steps, 0u);
      EXPECT_GT(result.totals.readings, 0u);
    } else {
      EXPECT_EQ(result.fingerprint(), reference)
          << "fleet aggregates differ at " << workers << " workers";
    }
  }
}

TEST(FleetEngine, AggregatesBitIdenticalAcrossShardCounts) {
  core::ThreadPool pool(4);
  std::string reference;
  for (const std::size_t shards : {1u, 3u, 10u}) {
    auto cfg = small_fleet();
    cfg.shards = shards;
    FleetEngine engine(cfg, pool);
    const std::string fp = engine.run().fingerprint();
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference)
          << "fleet aggregates differ at " << shards << " shards";
    }
  }
}

TEST(FleetEngine, TelemetryIngestMatchesSummaries) {
  auto cfg = small_fleet();
  TelemetryStore store(small_store(
      cfg.structures * FleetEngine::kNodesPerStructure, /*raw=*/128));
  cfg.telemetry = &store;
  core::ThreadPool pool(4);
  FleetEngine engine(cfg, pool);
  const FleetResult result = engine.run();
  EXPECT_EQ(store.total_appends(), result.totals.readings);
  // Every node reported, and its latest reading is a plausible stress.
  std::vector<float> scratch;
  const auto h = store.fleet_percentiles(scratch);
  EXPECT_EQ(h.nodes_reporting, store.nodes());
}

TEST(FleetEngine, RejectsUndersizedTelemetryStore) {
  auto cfg = small_fleet();
  TelemetryStore store(small_store(3));
  cfg.telemetry = &store;
  EXPECT_THROW(FleetEngine engine(std::move(cfg)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Kill-and-resume via per-shard checkpoint files

class FleetCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fleet_ckpt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(FleetCheckpointTest, KillAndResumeReproducesUninterruptedRun) {
  core::ThreadPool pool(4);

  auto cfg = small_fleet();
  cfg.shards = 4;
  FleetEngine full(cfg, pool);
  const std::string uninterrupted = full.run().fingerprint();

  // Crash: every shard checkpoints after one completed structure and stops.
  auto crash_cfg = cfg;
  crash_cfg.checkpoint_dir = dir_.string();
  crash_cfg.stop_after_structures = 1;
  FleetEngine crashed(crash_cfg, pool);
  const FleetResult partial = crashed.run();
  EXPECT_FALSE(partial.completed);
  EXPECT_LT(partial.structures_completed, cfg.structures);

  // Resume: completed structures come from the checkpoint files, the rest
  // re-run; the merged aggregates must be byte-identical.
  auto resume_cfg = cfg;
  resume_cfg.checkpoint_dir = dir_.string();
  FleetEngine resumed(resume_cfg, pool);
  const FleetResult finished = resumed.resume();
  EXPECT_TRUE(finished.completed);
  EXPECT_EQ(finished.structures_completed, cfg.structures);
  EXPECT_EQ(finished.structures_resumed, partial.structures_completed);
  EXPECT_EQ(finished.fingerprint(), uninterrupted);
}

TEST_F(FleetCheckpointTest, ResumeAtDifferentWorkerCountIsStillIdentical) {
  auto cfg = small_fleet();
  cfg.shards = 5;
  cfg.checkpoint_dir = dir_.string();

  core::ThreadPool pool8(8);
  FleetEngine full(cfg, pool8);
  const std::string uninterrupted = full.run().fingerprint();

  auto crash_cfg = cfg;
  crash_cfg.stop_after_structures = 1;
  FleetEngine crashed(crash_cfg, pool8);
  ASSERT_FALSE(crashed.run().completed);

  // The shard partition is worker-count independent, so a 1-worker resume
  // picks up 8-worker checkpoints.
  core::ThreadPool pool1(1);
  FleetEngine resumed(cfg, pool1);
  EXPECT_EQ(resumed.resume().fingerprint(), uninterrupted);
}

TEST_F(FleetCheckpointTest, ResumeRejectsDifferentConfig) {
  auto cfg = small_fleet();
  cfg.shards = 2;
  cfg.checkpoint_dir = dir_.string();
  cfg.stop_after_structures = 1;
  core::ThreadPool pool(2);
  FleetEngine crashed(cfg, pool);
  ASSERT_FALSE(crashed.run().completed);

  auto other = cfg;
  other.stop_after_structures = 0;
  other.seed = cfg.seed + 1;
  FleetEngine resumed(other, pool);
  EXPECT_THROW(resumed.resume(), std::runtime_error);
}

TEST_F(FleetCheckpointTest, ResumeWithoutCheckpointDirThrows) {
  FleetEngine engine(small_fleet());
  EXPECT_THROW(engine.resume(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Concurrent ingest/query stress (the TSan job runs this suite).
//
// Every stored word packs (t, value) with value = expected(node, t), so any
// torn read, missed publication, or cross-node bleed shows up as a value
// that fails the invariant — while writers lap the rings under the readers.

float expected(std::size_t node, std::uint32_t t) {
  return static_cast<float>((node * 131 + t) % 8191);
}

TEST(TelemetryStoreStress, ConcurrentIngestAndQueryKeepReadingsConsistent) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kNodesPerWriter = 8;
  constexpr std::size_t kNodes = kWriters * kNodesPerWriter;
  constexpr std::uint32_t kAppends = 20000;

  TelemetryStore store(small_store(kNodes, /*raw=*/16));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> observed{0};

  const auto check = [&](std::size_t node,
                         const TelemetryStore::Reading& r) {
    observed.fetch_add(1, std::memory_order_relaxed);
    if (r.value != expected(node, r.t_sec)) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  for (int q = 0; q < 3; ++q) {
    readers.emplace_back([&, q] {
      std::vector<TelemetryStore::Reading> window;
      std::vector<float> scratch;
      std::size_t node = static_cast<std::size_t>(q);
      // do-while: at least one full pass even if the writers win every
      // scheduling race (single-core hosts), so the readers always
      // exercise the query path against live or final state.
      do {
        node = (node + 7) % kNodes;
        if (const auto r = store.latest(node)) check(node, *r);
        window.clear();
        store.range(node, TelemetryStore::Tier::kRaw, 0, 0xfffffffeu,
                    window);
        for (const auto& r : window) check(node, r);
        store.fleet_percentiles(scratch);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint32_t t = 0; t < kAppends; ++t) {
        for (std::size_t i = 0; i < kNodesPerWriter; ++i) {
          const std::size_t node = w * kNodesPerWriter + i;
          store.append(node, t, expected(node, t));
        }
      }
      for (std::size_t i = 0; i < kNodesPerWriter; ++i) {
        store.flush(w * kNodesPerWriter + i);
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Final main-thread sweep over the quiescent store: every node's latest
  // reading and retained raw window must satisfy the invariant too.
  std::vector<TelemetryStore::Reading> window;
  for (std::size_t node = 0; node < kNodes; ++node) {
    const auto r = store.latest(node);
    ASSERT_TRUE(r.has_value());
    check(node, *r);
    window.clear();
    store.range(node, TelemetryStore::Tier::kRaw, 0, 0xfffffffeu, window);
    EXPECT_FALSE(window.empty());
    for (const auto& rd : window) check(node, rd);
  }

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GE(observed.load(), static_cast<std::uint64_t>(kNodes));
  EXPECT_EQ(store.total_appends(),
            static_cast<std::uint64_t>(kWriters) * kNodesPerWriter * kAppends);
}

TEST(TelemetryStoreStress, QueriesDuringFleetIngestSeeConsistentState) {
  auto cfg = small_fleet();
  cfg.structures = 12;
  TelemetryStore store(small_store(
      cfg.structures * FleetEngine::kNodesPerStructure, /*raw=*/64));
  cfg.telemetry = &store;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> readers;
  for (int q = 0; q < 2; ++q) {
    readers.emplace_back([&] {
      std::vector<TelemetryStore::Reading> window;
      std::vector<float> scratch;
      std::size_t node = 0;
      do {  // at least one pass even if ingest finishes first
        node = (node + 11) % store.nodes();
        (void)store.latest(node);
        window.clear();
        store.range(node, TelemetryStore::Tier::kMinute, 0, 0xfffffffeu,
                    window);
        store.fleet_percentiles(scratch);
        served.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  core::ThreadPool pool(4);
  FleetEngine engine(cfg, pool);
  const FleetResult result = engine.run();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(store.total_appends(), result.totals.readings);
  EXPECT_GT(served.load(), 0u);

  // And the concurrent-query run didn't perturb the aggregates.
  core::ThreadPool pool1(1);
  auto quiet_cfg = cfg;
  quiet_cfg.telemetry = nullptr;
  FleetEngine quiet(quiet_cfg, pool1);
  EXPECT_EQ(quiet.run().fingerprint(), result.fingerprint());
}

}  // namespace
}  // namespace ecocap::fleet
