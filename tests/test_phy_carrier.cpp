#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/carrier.hpp"
#include "phy/pie.hpp"
#include "phy/ring_effect.hpp"

namespace ecocap::phy {
namespace {

constexpr Real kFs = 2.0e6;

TEST(RingEffect, TimeConstantFormula) {
  RingingPzt pzt(kFs, 230.0e3, 217.0);
  // tau = Q / (pi f0) ~ 0.3 ms -> the paper's ~0.3 ms tail at 230 kHz.
  EXPECT_NEAR(pzt.ring_time_constant(), 217.0 / (3.14159265 * 230.0e3), 1e-9);
  EXPECT_NEAR(pzt.ring_time_constant(), 0.3e-3, 0.05e-3);
}

TEST(RingEffect, TailPersistsAfterDriveStops) {
  RingingPzt pzt(kFs, 230.0e3, 217.0);
  // Drive at resonance for 1 ms, then stop for 1 ms.
  const std::size_t on = 2000, off = 2000;
  dsp::Oscillator osc(kFs, 230.0e3);
  Signal drive(on + off, 0.0);
  for (std::size_t i = 0; i < on; ++i) drive[i] = osc.next();
  const Signal out = pzt.drive(drive);

  const Signal steady(out.begin() + 1200, out.begin() + 2000);
  const Signal just_after(out.begin() + 2000, out.begin() + 2200);  // 0.1 ms
  const Signal much_later(out.begin() + 3600, out.begin() + 3999);  // 0.9 ms
  const Real a0 = dsp::rms(steady);
  // The tail starts near a third of the steady amplitude (Fig. 7(a)) —
  // the storage branch holds half the output, less the brief loaded decay
  // before the drive-presence detector releases the resonator.
  EXPECT_GT(dsp::rms(just_after), 0.3 * a0);  // still ringing
  EXPECT_LT(dsp::rms(just_after), 0.8 * a0);
  EXPECT_LT(dsp::rms(much_later), 0.1 * a0);  // decayed
}

TEST(RingEffect, DecayTimeMatchesPrediction) {
  RingingPzt pzt(kFs, 230.0e3, 217.0);
  const Real t10 = pzt.ring_decay_time(0.1);
  EXPECT_NEAR(t10, pzt.ring_time_constant() * std::log(10.0), 1e-9);
  EXPECT_THROW((void)pzt.ring_decay_time(1.5), std::invalid_argument);
}

TEST(RingEffect, UnityGainAtResonance) {
  RingingPzt pzt(kFs, 230.0e3, 100.0);
  dsp::Oscillator osc(kFs, 230.0e3);
  const Signal out = pzt.drive(osc.generate(40000));
  const Signal tail(out.begin() + 30000, out.end());
  EXPECT_NEAR(dsp::rms(tail) * std::sqrt(2.0), 1.0, 0.05);
}

TEST(RingEffect, OokTailDurationHelper) {
  EXPECT_NEAR(ook_tail_duration(230.0e3, 217.0, 0.1),
              0.3003e-3 * std::log(10.0), 2e-5);
}

TEST(Carrier, FskKeepsConstantEnvelope) {
  // The FSK anti-ring trick never stops the PZT: envelope stays constant.
  Signal baseband(4000, 1.0);
  for (std::size_t i = 1000; i < 2000; ++i) baseband[i] = 0.0;
  CarrierParams cp;
  cp.fs = kFs;
  const Signal fsk =
      modulate_downlink(baseband, cp, DownlinkScheme::kFskOffResonance);
  const Signal low_edge(fsk.begin() + 1100, fsk.begin() + 1900);
  EXPECT_NEAR(dsp::rms(low_edge) * std::sqrt(2.0), 1.0, 0.05);

  const Signal ook = modulate_downlink(baseband, cp, DownlinkScheme::kOok);
  const Signal ook_low(ook.begin() + 1100, ook.begin() + 1900);
  EXPECT_EQ(dsp::rms(ook_low), 0.0);
}

TEST(Carrier, FskFrequenciesCorrectPerEdge) {
  Signal baseband(40000, 1.0);
  for (std::size_t i = 20000; i < 40000; ++i) baseband[i] = 0.0;
  CarrierParams cp;
  cp.fs = kFs;
  const Signal fsk =
      modulate_downlink(baseband, cp, DownlinkScheme::kFskOffResonance);
  const Signal high(fsk.begin(), fsk.begin() + 20000);
  const Signal low(fsk.begin() + 20000, fsk.end());
  EXPECT_NEAR(dsp::estimate_tone_frequency(high, kFs, 100e3, 300e3), 230.0e3,
              500.0);
  EXPECT_NEAR(dsp::estimate_tone_frequency(low, kFs, 100e3, 300e3), 180.0e3,
              500.0);
}

TEST(Backscatter, ReflectionStatesScaleCarrier) {
  dsp::Oscillator osc(kFs, 230.0e3);
  const Signal carrier = osc.generate(2000, 1.0);
  Signal switching(1000, 1.0);  // reflective first half (of data span)
  BackscatterParams bp;
  bp.reflective_gain = 1.0;
  bp.absorptive_gain = 0.25;
  const Signal out = backscatter_modulate(carrier, switching, kFs, bp);
  // Reflective span: full amplitude; beyond the data: absorptive.
  const Signal refl(out.begin() + 100, out.begin() + 900);
  const Signal abso(out.begin() + 1100, out.begin() + 1900);
  EXPECT_NEAR(dsp::rms(refl) * std::sqrt(2.0), 1.0, 0.03);
  EXPECT_NEAR(dsp::rms(abso) * std::sqrt(2.0), 0.25, 0.03);
}

TEST(Backscatter, SubcarrierCreatesSidebands) {
  // The BLF square subcarrier shifts the backscatter energy +-f_blf from
  // the carrier (Appendix C / Fig. 24).
  dsp::Oscillator osc(kFs, 230.0e3);
  const std::size_t n = 1 << 17;
  const Signal carrier = osc.generate(n, 1.0);
  const Signal switching(n, 1.0);  // constant reflective, subcarrier only
  BackscatterParams bp;
  bp.f_blf = 8000.0;
  bp.absorptive_gain = 0.0;
  const Signal out = backscatter_modulate(carrier, switching, kFs, bp);
  const Real lower = dsp::band_power(out, kFs, 230.0e3 - 9000.0, 230.0e3 - 7000.0);
  const Real upper = dsp::band_power(out, kFs, 230.0e3 + 7000.0, 230.0e3 + 9000.0);
  const Real at_carrier = dsp::band_power(out, kFs, 229.5e3, 230.5e3);
  const Real guard = dsp::band_power(out, kFs, 232.0e3, 236.0e3);
  // The OOK switching retains a carrier component (its DC term); the data
  // sidebands sit +-f_blf away with a clean guard band between (Fig. 24).
  EXPECT_GT(lower, 0.03);
  EXPECT_GT(upper, 0.03);
  EXPECT_GT(at_carrier, 0.0);
  EXPECT_LT(guard, 0.2 * std::min(lower, upper));
}

TEST(Backscatter, SwitchRestsAbsorptiveAfterData) {
  dsp::Oscillator osc(kFs, 230.0e3);
  const Signal carrier = osc.generate(1000, 1.0);
  const Signal switching;  // no data at all
  BackscatterParams bp;
  bp.absorptive_gain = 0.25;
  const Signal out = backscatter_modulate(carrier, switching, kFs, bp);
  EXPECT_NEAR(dsp::rms(out) * std::sqrt(2.0), 0.25, 0.03);
}

TEST(Backscatter, SwitchingLongerThanCarrierThrows) {
  const Signal carrier(100, 1.0);
  const Signal switching(200, 1.0);
  EXPECT_THROW(
      (void)backscatter_modulate(carrier, switching, kFs, BackscatterParams{}),
      std::invalid_argument);
}

TEST(BlfSquare, FiftyPercentDuty) {
  const Signal sq = blf_square(kFs, 4000.0, 100000);
  int high = 0;
  for (Real v : sq) {
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    if (v > 0.0) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / 100000.0, 0.5, 0.01);
}

TEST(BlfSquare, PhaseOffsetShifts) {
  const std::size_t period = static_cast<std::size_t>(kFs / 4000.0);
  const Signal a = blf_square(kFs, 4000.0, 1000, 0);
  const Signal b = blf_square(kFs, 4000.0, 1000, period / 2);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a[i], -b[i]);
  }
}

/// Property: FSK downlink with off-resonance suppression yields a cleaner
/// OOK envelope at the node than raw OOK, for several Q values (Fig. 7).
class RingQSweep : public ::testing::TestWithParam<double> {};

TEST_P(RingQSweep, TailScalesWithQ) {
  RingingPzt pzt(kFs, 230.0e3, GetParam());
  EXPECT_NEAR(pzt.ring_time_constant(),
              GetParam() / (3.14159265358979 * 230.0e3), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Qs, RingQSweep,
                         ::testing::Values(50.0, 100.0, 217.0, 400.0));

}  // namespace
}  // namespace ecocap::phy
