#include <gtest/gtest.h>

#include "core/multinode_link.hpp"

namespace ecocap::core {
namespace {

MultiNodeLink::Config make_config(std::uint8_t q, std::uint64_t seed) {
  MultiNodeLink::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  cfg.channel.fs = 2.0e6;
  cfg.channel.noise_sigma = 1e-4;
  cfg.transmitter.carrier.fs = cfg.channel.fs;
  cfg.transmitter.tx_voltage = 200.0;
  cfg.receiver.fs = cfg.channel.fs;
  cfg.receiver.uplink.bitrate = 1000.0;
  cfg.capsule.firmware.uplink.bitrate = 1000.0;
  cfg.capsule.firmware.blf = 4000.0;
  cfg.q = q;
  cfg.seed = seed;
  return cfg;
}

TEST(MultiNodeLink, SingleNodeIdentifiedWaveformLevel) {
  MultiNodeLink link(make_config(0, 5));
  MultiNodeLink::NodePlacement p;
  p.node_id = 0x0301;
  p.distance = 0.4;
  link.deploy(p);
  const auto r = link.run_inventory();
  ASSERT_EQ(r.inventoried_ids.size(), 1u);
  EXPECT_EQ(r.inventoried_ids[0], 0x0301);
  EXPECT_EQ(r.collisions, 0);
}

TEST(MultiNodeLink, TwoNodesResolvedAcrossSlots) {
  MultiNodeLink link(make_config(2, 9));  // 4 slots
  for (int i = 0; i < 2; ++i) {
    MultiNodeLink::NodePlacement p;
    p.node_id = static_cast<std::uint16_t>(0x0400 + i);
    p.distance = 0.4 + 0.3 * i;
    link.deploy(p);
  }
  const auto r = link.run_inventory();
  EXPECT_EQ(r.inventoried_ids.size(), 2u);
}

TEST(MultiNodeLink, ForcedCollisionIsCountedAndRetried) {
  // q = 0 forces both nodes into the same slot every round: the first
  // round must collide; later rounds are also all-collide, so nobody is
  // identified — the waveform-level proof that arbitration is necessary.
  MultiNodeLink::Config cfg = make_config(0, 13);
  cfg.max_rounds = 3;
  MultiNodeLink link(cfg);
  for (int i = 0; i < 2; ++i) {
    MultiNodeLink::NodePlacement p;
    p.node_id = static_cast<std::uint16_t>(0x0500 + i);
    p.distance = 0.4;
    link.deploy(p);
  }
  const auto r = link.run_inventory();
  EXPECT_TRUE(r.inventoried_ids.empty());
  EXPECT_GE(r.collisions, 3);
}

TEST(MultiNodeLink, UnreachableNodeStaysSilent) {
  MultiNodeLink::Config cfg = make_config(1, 21);
  cfg.transmitter.tx_voltage = 50.0;  // S3 range anchor: 1.34 m
  MultiNodeLink link(cfg);
  MultiNodeLink::NodePlacement near;
  near.node_id = 0x0601;
  near.distance = 0.4;
  MultiNodeLink::NodePlacement far;
  far.node_id = 0x0602;
  far.distance = 5.0;  // beyond the 50 V power-up range
  link.deploy(near);
  link.deploy(far);
  const auto r = link.run_inventory();
  ASSERT_EQ(r.inventoried_ids.size(), 1u);
  EXPECT_EQ(r.inventoried_ids[0], 0x0601);
}

// Regression for the truncated-frame-after-collision bug: the collided-slot
// superposition used to keep only the overlap of the colliding replies, so a
// short truncated composite could decode as a clean (wrong) RN16 and be
// scored a success. Collided slots are now classified as collision losses
// (counted in collision_false_decodes when the composite still decodes) and
// never inventory a node. The fixed-seed aggregates below pin the behaviour.
TEST(MultiNodeLink, CollidedSlotsNeverInventoryFixedSeedAggregates) {
  MultiNodeLink::Config cfg = make_config(0, 33);  // q = 0: all-collide
  cfg.max_rounds = 4;
  MultiNodeLink link(cfg);
  for (int i = 0; i < 3; ++i) {
    MultiNodeLink::NodePlacement p;
    p.node_id = static_cast<std::uint16_t>(0x0700 + i);
    p.distance = 0.4 + 0.1 * i;
    link.deploy(p);
  }
  const auto r = link.run_inventory();
  EXPECT_TRUE(r.inventoried_ids.empty());
  EXPECT_EQ(r.collisions, 4);  // one per round, every round
  EXPECT_GE(r.collision_false_decodes, 0);
  EXPECT_LE(r.collision_false_decodes, r.collisions);
}

}  // namespace
}  // namespace ecocap::core
