#include <gtest/gtest.h>

#include <cmath>

#include "channel/concrete_channel.hpp"
#include "channel/scatterers.hpp"
#include "channel/link_budget.hpp"
#include "channel/snr_models.hpp"
#include "channel/structures.hpp"
#include "dsp/fft.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/signal_ops.hpp"

namespace ecocap::channel {
namespace {

TEST(Structures, Figure12SetComplete) {
  const auto all = structures::figure12_structures();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "S1-slab");
  EXPECT_EQ(all[5].name, "PAB-pool-2");
  EXPECT_TRUE(all[4].is_pool());
  EXPECT_FALSE(all[2].is_pool());
}

TEST(LinkBudget, Figure12AnchorPoints) {
  // The calibrated structures must reproduce the paper's measured ranges.
  struct Anchor {
    Structure s;
    Real volts;
    Real range_m;
    Real tol;
  };
  const std::vector<Anchor> anchors = {
      {structures::s1_slab(), 50.0, 1.30, 0.08},
      {structures::s2_column(), 50.0, 0.56, 0.05},
      {structures::s2_column(), 200.0, 2.35, 0.12},
      {structures::s3_common_wall(), 50.0, 1.34, 0.08},
      {structures::s4_protective_wall(), 50.0, 0.60, 0.05},
      {structures::s4_protective_wall(), 200.0, 3.85, 0.2},
      {structures::pab_pool1(), 50.0, 0.19, 0.04},
      {structures::pab_pool1(), 200.0, 2.00, 0.12},
      {structures::pab_pool2(), 125.0, 6.50, 0.4},
  };
  for (const auto& a : anchors) {
    const LinkBudget budget(a.s);
    const auto range = budget.max_powerup_range(a.volts);
    ASSERT_TRUE(range.has_value()) << a.s.name << " @ " << a.volts;
    EXPECT_NEAR(*range, a.range_m, a.tol) << a.s.name << " @ " << a.volts;
  }
}

TEST(LinkBudget, SixMeterHeadline) {
  // Headline result: power-up range up to ~6 m (S3 at 250 V).
  const LinkBudget budget(structures::s3_common_wall());
  const auto range = budget.max_powerup_range(250.0);
  ASSERT_TRUE(range.has_value());
  EXPECT_GT(*range, 5.5);
}

TEST(LinkBudget, RangeMonotoneInVoltage) {
  const LinkBudget budget(structures::s3_common_wall());
  Real prev = 0.0;
  for (Real v : {50.0, 100.0, 150.0, 200.0, 250.0}) {
    const auto r = budget.max_powerup_range(v);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(*r, prev);
    prev = *r;
  }
}

TEST(LinkBudget, BelowCouplingVoltageNoPowerUp) {
  const LinkBudget budget(structures::s3_common_wall());
  EXPECT_FALSE(budget.max_powerup_range(10.0).has_value());
}

TEST(LinkBudget, RangeCappedAtStructureLength) {
  Structure s = structures::s1_slab();  // 1.5 m long
  const LinkBudget budget(s);
  const auto r = budget.max_powerup_range(250.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(*r, s.length + 1e-9);
}

TEST(LinkBudget, RequiredVoltageInvertsRange) {
  const LinkBudget budget(structures::s4_protective_wall());
  const Real v = budget.required_voltage(2.0);
  const auto r = budget.max_powerup_range(v);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 2.0, 1e-6);
}

TEST(LinkBudget, HraGainExtendsRange) {
  const LinkBudget with_hra(structures::s3_common_wall(), 0.5, 2.0);
  const LinkBudget without(structures::s3_common_wall(), 0.5, 1.0);
  EXPECT_GT(*with_hra.max_powerup_range(100.0),
            *without.max_powerup_range(100.0));
}

TEST(LinkBudget, NodeVoltageDecaysExponentially) {
  const Structure s = structures::s3_common_wall();
  const LinkBudget budget(s);
  const Real v1 = budget.node_voltage(100.0, 1.0);
  const Real v2 = budget.node_voltage(100.0, 2.0);
  EXPECT_NEAR(v2 / v1, std::exp(-s.effective_attenuation), 1e-9);
}

TEST(SnrModel, EcoCapsuleCollapsesPast13kbps) {
  const auto m = UplinkSnrModel::ecocapsule(wave::materials::normal_concrete());
  EXPECT_NEAR(m.snr_db(1000.0), 15.0, 0.5);
  EXPECT_GT(m.snr_db(8000.0), 10.0);
  EXPECT_LT(m.snr_db(14000.0), 8.0);   // rapid drop past 13 kbps
  EXPECT_LT(m.snr_db(15000.0), 5.5);
}

TEST(SnrModel, PabLimitedTo3kbps) {
  const auto m = UplinkSnrModel::pab();
  EXPECT_GT(m.snr_db(1000.0), 12.0);
  EXPECT_LT(m.snr_db(4000.0), 5.0);
}

TEST(SnrModel, U2bOvertakesEcoCapsulePast9kbps) {
  const auto eco = UplinkSnrModel::ecocapsule(wave::materials::normal_concrete());
  const auto u2b = UplinkSnrModel::u2b();
  EXPECT_GT(eco.snr_db(4000.0), u2b.snr_db(4000.0));
  EXPECT_GT(u2b.snr_db(11000.0), eco.snr_db(11000.0));
}

TEST(SnrModel, StrongerConcreteHigherSnr) {
  const auto nc = UplinkSnrModel::ecocapsule(wave::materials::normal_concrete());
  const auto uhpc = UplinkSnrModel::ecocapsule(wave::materials::uhpc());
  EXPECT_GT(uhpc.snr0_db, nc.snr0_db);
}

TEST(SnrModel, FmoBerShape) {
  // Deep in the noise the BER approaches coin-flip territory.
  EXPECT_GT(fm0_ber(-10.0), 0.3);
  EXPECT_LE(fm0_ber(-10.0), 0.5);
  EXPECT_LT(fm0_ber(9.0), 1e-4);
  EXPECT_GT(fm0_ber(9.0, 3.0), fm0_ber(9.0));  // penalty raises BER
}

TEST(SnrModel, ThroughputFig17Shape) {
  // All >= 13 kbps; UHPC/UHPFRC ~2 kbps above NC.
  const auto nc =
      max_throughput(UplinkSnrModel::ecocapsule(wave::materials::normal_concrete()));
  const auto uhpc =
      max_throughput(UplinkSnrModel::ecocapsule(wave::materials::uhpc()));
  const auto uhpfrc =
      max_throughput(UplinkSnrModel::ecocapsule(wave::materials::uhpfrc()));
  EXPECT_GT(nc.throughput, 11.0e3);
  EXPECT_GT(uhpc.throughput, nc.throughput);
  EXPECT_GE(uhpfrc.throughput, uhpc.throughput * 0.98);
  EXPECT_LT(uhpfrc.throughput, 18.0e3);
}

TEST(DownlinkAngle, Fig19Shape) {
  const auto m = DownlinkAngleModel::paper_default();
  const Real at0 = m.snr_db(0.0);
  const Real at15 = m.snr_db(wave::deg_to_rad(15.0));
  const Real at30 = m.snr_db(wave::deg_to_rad(30.0));
  const Real at50 = m.snr_db(wave::deg_to_rad(50.0));
  const Real at60 = m.snr_db(wave::deg_to_rad(60.0));
  const Real at75 = m.snr_db(wave::deg_to_rad(75.0));

  // Peak ~15 dB in the S-only window.
  EXPECT_NEAR(at50, 15.0, 1.5);
  EXPECT_NEAR(at60, 15.0, 1.5);
  // Deep dip at 15 degrees (paper: -73%), moderate at 30 (-30%).
  EXPECT_LT(at15, 0.5 * at50);
  EXPECT_LT(at30, at50);
  EXPECT_GT(at30, at15);
  // Direct contact: relatively high but below the S-only peak.
  EXPECT_GT(at0, at15);
  EXPECT_LT(at0, at50);
  // Past the second critical angle: collapse.
  EXPECT_LT(at75, at50);
}

TEST(ConcreteChannel, PathGainMatchesRangeLaw) {
  ChannelConfig cfg;
  cfg.distance = 2.0;
  const Structure s = structures::s3_common_wall();
  const ConcreteChannel ch(s, cfg);
  EXPECT_NEAR(ch.path_gain(), std::exp(-s.effective_attenuation * 2.0), 1e-12);
}

TEST(ConcreteChannel, PrismProducesSingleModeTaps) {
  ChannelConfig cfg;
  cfg.prism_angle_deg = 60.0;  // S-only window
  const ConcreteChannel ch(structures::s3_common_wall(), cfg);
  const auto taps = ch.mode_taps();
  ASSERT_EQ(taps.size(), 1u);  // only the S arrival
}

TEST(ConcreteChannel, DualModeTapsBelowCriticalAngle) {
  ChannelConfig cfg;
  cfg.prism_angle_deg = 15.0;
  const ConcreteChannel ch(structures::s3_common_wall(), cfg);
  const auto taps = ch.mode_taps();
  ASSERT_EQ(taps.size(), 2u);
  // P arrives before S (Cp > Cs).
  EXPECT_LT(taps.front().delay, taps.back().delay);
}

TEST(ConcreteChannel, ResonanceSuppressesOffResonantTone) {
  // The "FSK in OOK out" physics: 180 kHz is strongly attenuated relative
  // to 230 kHz by the concrete resonance.
  ChannelConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.distance = 0.2;
  const ConcreteChannel ch(structures::s3_common_wall(), cfg);
  dsp::Rng rng(1);
  const dsp::Signal on = dsp::tone(cfg.fs, 230.0e3, 40000, 1.0);
  const dsp::Signal off = dsp::tone(cfg.fs, 180.0e3, 40000, 1.0);
  dsp::Signal on_rx;
  dsp::Signal off_rx;
  ch.downlink(on, rng, on_rx);
  ch.downlink(off, rng, off_rx);
  const Real p_on = dsp::power(on_rx);
  const Real p_off = dsp::power(off_rx);
  EXPECT_GT(p_on, 10.0 * p_off);
}

TEST(ConcreteChannel, UplinkAddsSelfInterference) {
  ChannelConfig cfg;
  cfg.distance = 0.2;
  cfg.noise_sigma = 0.0;
  cfg.self_interference_gain = 10.0;
  const ConcreteChannel ch(structures::s3_common_wall(), cfg);
  dsp::Rng rng(2);
  // A weak off-carrier emission: the received power must be dominated by
  // the CW leakage at the carrier frequency.
  const dsp::Signal emission = dsp::tone(cfg.fs, 226.0e3, 65536, 0.1);
  dsp::Signal rx;
  ch.uplink(emission, 230.0e3, rng, rx);
  const Real at_cw = dsp::band_power(rx, cfg.fs, 229.5e3, 230.5e3);
  const Real at_bs = dsp::band_power(rx, cfg.fs, 225.5e3, 226.5e3);
  EXPECT_GT(at_cw, 10.0 * at_bs);
}


TEST(ConcreteChannel, MultipathAddsReverberantTaps) {
  ChannelConfig direct_cfg;
  direct_cfg.prism_angle_deg = 60.0;
  direct_cfg.distance = 0.8;
  ChannelConfig mp_cfg = direct_cfg;
  mp_cfg.use_multipath = true;
  mp_cfg.multipath_rays = 32;
  const Structure s = structures::s3_common_wall();
  const ConcreteChannel direct(s, direct_cfg);
  const ConcreteChannel multipath(s, mp_cfg);
  EXPECT_EQ(direct.mode_taps().size(), 1u);
  EXPECT_GT(multipath.mode_taps().size(), direct.mode_taps().size());
  // Reverberant taps stay below the direct path.
  const auto taps = multipath.mode_taps();
  const double direct_amp = std::abs(taps.front().amplitude);
  for (std::size_t i = 1; i < taps.size(); ++i) {
    EXPECT_LT(std::abs(taps[i].amplitude), direct_amp);
  }
}

TEST(ConcreteChannel, AbsoluteDelayPreserved) {
  ChannelConfig cfg;
  cfg.preserve_absolute_delay = true;
  cfg.noise_sigma = 0.0;
  cfg.distance = 1.0;
  const Structure s = structures::s3_common_wall();
  const ConcreteChannel ch(s, cfg);
  dsp::Rng rng(4);
  // An impulse-ish burst: its energy must not appear before d / Cs.
  dsp::Signal x(8000, 0.0);
  for (int i = 0; i < 50; ++i) x[static_cast<std::size_t>(i)] = 1.0;
  dsp::Signal y;
  ch.downlink(x, rng, y);
  const auto expected_shift =
      static_cast<std::size_t>(1.0 / s.material.cs * cfg.fs);
  double early = 0.0;
  for (std::size_t i = 0; i + 200 < expected_shift && i < y.size(); ++i) {
    early = std::max(early, std::abs(y[i]));
  }
  double later = 0.0;
  for (std::size_t i = expected_shift;
       i < std::min(y.size(), expected_shift + 2000); ++i) {
    later = std::max(later, std::abs(y[i]));
  }
  EXPECT_LT(early, 0.05 * later);
}


TEST(ConcreteChannel, ScattererFieldFadesLink) {
  ChannelConfig clean_cfg;
  clean_cfg.distance = 1.2;
  ChannelConfig faded_cfg = clean_cfg;
  Scatterer s;
  s.position = wave::Point2{0.6, 0.10};  // on the mid-thickness path
  s.radius = 0.02;
  s.blockage = 0.6;
  faded_cfg.scatterers = {s};
  const Structure wall = structures::s3_common_wall();
  const ConcreteChannel clean(wall, clean_cfg);
  const ConcreteChannel faded(wall, faded_cfg);
  EXPECT_LT(faded.path_gain(), clean.path_gain());
  EXPECT_DOUBLE_EQ(clean.scatterer_gain(230.0e3), 1.0);
  EXPECT_LT(faded.scatterer_gain(230.0e3), 1.0);
}

TEST(ConcreteChannel, FineTuningFindsBetterCarrier) {
  ChannelConfig cfg;
  cfg.distance = 1.6;
  dsp::Rng rng(23);
  const Structure wall = structures::s3_common_wall();
  const auto field =
      ScattererField::random_rebar(24, 2.0, wall.thickness, wall.material, rng);
  cfg.scatterers = field.scatterers();
  const ConcreteChannel ch(wall, cfg);
  const double nominal = ch.scatterer_gain(230.0e3);
  double best = 0.0;
  for (int f = 210; f <= 250; f += 2) {
    best = std::max(best, ch.scatterer_gain(f * 1000.0));
  }
  EXPECT_GE(best, nominal);
}

TEST(ConcreteChannel, InvalidConfigThrows) {
  ChannelConfig cfg;
  cfg.fs = 0.0;
  EXPECT_THROW(ConcreteChannel(structures::s1_slab(), cfg),
               std::invalid_argument);
}

/// Property: across all Fig. 12 structures, range at 250 V >= range at 50 V
/// and both within the physical length.
class StructureSweep : public ::testing::TestWithParam<int> {};

TEST_P(StructureSweep, RangeLawSane) {
  const auto all = structures::figure12_structures();
  const Structure& s = all[static_cast<std::size_t>(GetParam())];
  const LinkBudget budget(s);
  const auto lo = budget.max_powerup_range(90.0);
  const auto hi = budget.max_powerup_range(250.0);
  ASSERT_TRUE(hi.has_value());
  EXPECT_LE(*hi, s.length + 1e-9);
  if (lo) {
    EXPECT_LE(*lo, *hi);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStructures, StructureSweep,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace ecocap::channel
