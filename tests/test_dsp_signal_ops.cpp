#include <gtest/gtest.h>

#include <cmath>

#include "dsp/oscillator.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"

namespace ecocap::dsp {
namespace {

TEST(SignalOps, MeanAndPowerOfConstant) {
  const Signal x(100, 2.0);
  EXPECT_DOUBLE_EQ(mean(x), 2.0);
  EXPECT_DOUBLE_EQ(power(x), 4.0);
  EXPECT_DOUBLE_EQ(rms(x), 2.0);
  EXPECT_DOUBLE_EQ(peak(x), 2.0);
  EXPECT_DOUBLE_EQ(energy(x), 400.0);
}

TEST(SignalOps, EmptyInputsAreZero) {
  const Signal x;
  EXPECT_EQ(mean(x), 0.0);
  EXPECT_EQ(power(x), 0.0);
  EXPECT_EQ(rms(x), 0.0);
  EXPECT_EQ(peak(x), 0.0);
}

TEST(SignalOps, SinePowerIsHalfAmplitudeSquared) {
  const Signal x = tone(1.0e6, 10.0e3, 100000, 3.0);
  EXPECT_NEAR(power(x), 4.5, 0.01);
}

TEST(SignalOps, DbRoundTrip) {
  EXPECT_NEAR(to_db(from_db(13.7)), 13.7, 1e-9);
  EXPECT_NEAR(from_db(3.0), 1.9953, 1e-3);
  EXPECT_EQ(to_db(0.0), -300.0);
  EXPECT_EQ(to_db(-1.0), -300.0);
}

TEST(SignalOps, NormalizePeak) {
  Signal x{1.0, -4.0, 2.0};
  normalize_peak(x, 2.0);
  EXPECT_DOUBLE_EQ(peak(x), 2.0);
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  Signal silent(10, 0.0);
  normalize_peak(silent);  // must not blow up
  EXPECT_DOUBLE_EQ(peak(silent), 0.0);
}

TEST(SignalOps, AddAndMultiplySizeChecked) {
  const Signal a{1.0, 2.0};
  const Signal b{3.0, 4.0};
  const Signal c = add(a, b);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
  const Signal d = multiply(a, b);
  EXPECT_DOUBLE_EQ(d[1], 8.0);
  const Signal bad{1.0};
  EXPECT_THROW((void)add(a, bad), std::invalid_argument);
  EXPECT_THROW((void)multiply(a, bad), std::invalid_argument);
}

TEST(SignalOps, AwgnSnrHitsTarget) {
  Rng rng(42);
  Signal x = tone(1.0e6, 50.0e3, 200000, 1.0);
  const Signal clean = x;
  add_awgn_snr(x, 10.0, rng);
  const Real measured = measure_snr_db(clean, x);
  EXPECT_NEAR(measured, 10.0, 0.3);
}

TEST(SignalOps, MeasureSnrPerfectSignal) {
  const Signal x = tone(1.0e6, 50.0e3, 1000, 1.0);
  EXPECT_EQ(measure_snr_db(x, x), 300.0);
}

TEST(SignalOps, SliceZeroPadsPastEnd) {
  const Signal x{1.0, 2.0, 3.0};
  const Signal s = slice(x, 2, 3);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
}

TEST(SignalOps, ConcatPreservesOrder) {
  const Signal a{1.0};
  const Signal b{2.0, 3.0};
  const Signal c = concat(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(Rng, DeterministicUnderSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Real v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, IndexBounded) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(17), 17u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  Real sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Real v = rng.gaussian(2.0);
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 4.0, 0.1);
}

/// Property sweep: add_awgn_snr achieves the requested SNR across a grid.
class AwgnSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(AwgnSnrSweep, AchievesRequestedSnr) {
  Rng rng(1234);
  Signal x = tone(1.0e6, 100.0e3, 100000, 0.7);
  const Signal clean = x;
  add_awgn_snr(x, GetParam(), rng);
  EXPECT_NEAR(measure_snr_db(clean, x), GetParam(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(SnrGrid, AwgnSnrSweep,
                         ::testing::Values(-3.0, 0.0, 3.0, 8.0, 15.0, 25.0));

}  // namespace
}  // namespace ecocap::dsp
