#include <gtest/gtest.h>

#include "phy/protocol.hpp"

namespace ecocap::phy {
namespace {

TEST(Protocol, QueryRoundTrip) {
  const Command cmd{QueryCommand{3}};
  const Bits bits = encode_command(cmd);
  EXPECT_EQ(bits.size(), 13u);  // 4 header + 4 Q + 5 CRC5
  const auto parsed = parse_command(bits);
  ASSERT_TRUE(parsed.has_value());
  const auto* q = std::get_if<QueryCommand>(&*parsed);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->q, 3);
}

TEST(Protocol, QueryRepRoundTrip) {
  const Bits bits = encode_command(Command{QueryRepCommand{}});
  EXPECT_EQ(bits.size(), 9u);
  const auto parsed = parse_command(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NE(std::get_if<QueryRepCommand>(&*parsed), nullptr);
}

TEST(Protocol, AckRoundTrip) {
  const Bits bits = encode_command(Command{AckCommand{0xBEEF}});
  EXPECT_EQ(bits.size(), 36u);
  const auto parsed = parse_command(bits);
  ASSERT_TRUE(parsed.has_value());
  const auto* a = std::get_if<AckCommand>(&*parsed);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->rn16, 0xBEEF);
}

TEST(Protocol, ReadRoundTrip) {
  const Bits bits = encode_command(Command{ReadCommand{0x1234, 5}});
  EXPECT_EQ(bits.size(), 44u);
  const auto parsed = parse_command(bits);
  ASSERT_TRUE(parsed.has_value());
  const auto* r = std::get_if<ReadCommand>(&*parsed);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rn16, 0x1234);
  EXPECT_EQ(r->sensor_id, 5);
}

TEST(Protocol, SetBlfRoundTrip) {
  const Bits bits = encode_command(Command{SetBlfCommand{0x1234, 80}});
  EXPECT_EQ(bits.size(), 52u);
  const auto parsed = parse_command(bits);
  ASSERT_TRUE(parsed.has_value());
  const auto* s = std::get_if<SetBlfCommand>(&*parsed);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->blf_centihz, 80);
}

TEST(Protocol, CorruptedCommandRejected) {
  Bits bits = encode_command(Command{ReadCommand{0x1234, 5}});
  bits[10] ^= 1;
  EXPECT_FALSE(parse_command(bits).has_value());
}

TEST(Protocol, CorruptedQueryCrc5Rejected) {
  Bits bits = encode_command(Command{QueryCommand{2}});
  bits[6] ^= 1;
  EXPECT_FALSE(parse_command(bits).has_value());
}

TEST(Protocol, TruncatedFrameRejected) {
  Bits bits = encode_command(Command{AckCommand{1}});
  bits.pop_back();
  EXPECT_FALSE(parse_command(bits).has_value());
  EXPECT_FALSE(parse_command(Bits{1, 0}).has_value());
}

TEST(Protocol, Rn16ResponseRoundTrip) {
  const Bits bits = encode_response(Response{Rn16Response{0xCAFE}});
  EXPECT_EQ(bits.size(), rn16_response_bits());
  const auto parsed = parse_rn16_response(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rn16, 0xCAFE);
}

TEST(Protocol, IdResponseRoundTrip) {
  const Bits bits = encode_response(Response{IdResponse{0x0042}});
  EXPECT_EQ(bits.size(), id_response_bits());
  const auto parsed = parse_id_response(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->node_id, 0x0042);
  Bits bad = bits;
  bad[3] ^= 1;
  EXPECT_FALSE(parse_id_response(bad).has_value());
}

TEST(Protocol, DataResponseRoundTrip) {
  DataResponse d;
  d.sensor_id = 2;
  d.milli_value = to_milli(-17.25);
  const Bits bits = encode_response(Response{d});
  EXPECT_EQ(bits.size(), data_response_bits());
  const auto parsed = parse_data_response(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sensor_id, 2);
  EXPECT_NEAR(from_milli(parsed->milli_value), -17.25, 1e-9);
}

TEST(Protocol, DataResponseCorruptionRejected) {
  DataResponse d;
  d.sensor_id = 1;
  d.milli_value = 123456;
  Bits bits = encode_response(Response{d});
  for (std::size_t i = 0; i < bits.size(); i += 7) {
    Bits c = bits;
    c[i] ^= 1;
    EXPECT_FALSE(parse_data_response(c).has_value()) << i;
  }
}

TEST(Protocol, MilliFixedPointNegativeValues) {
  EXPECT_EQ(to_milli(-1.5), -1500);
  EXPECT_NEAR(from_milli(to_milli(-273.15)), -273.15, 1e-9);
  EXPECT_NEAR(from_milli(to_milli(0.0004)), 0.0, 1e-9);  // below resolution
}


TEST(Protocol, SelectRoundTrip) {
  const Bits bits = encode_command(Command{SelectCommand{0x0F00, 0xFF00}});
  EXPECT_EQ(bits.size(), 52u);
  const auto parsed = parse_command(bits);
  ASSERT_TRUE(parsed.has_value());
  const auto* s = std::get_if<SelectCommand>(&*parsed);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->pattern, 0x0F00);
  EXPECT_EQ(s->mask, 0xFF00);
  Bits bad = bits;
  bad[20] ^= 1;
  EXPECT_FALSE(parse_command(bad).has_value());
}

/// Property: every command round-trips through encode/parse across a grid
/// of field values.
class CommandFieldSweep : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(CommandFieldSweep, AckAndReadRoundTrip) {
  const std::uint16_t rn16 = GetParam();
  const auto ack = parse_command(encode_command(Command{AckCommand{rn16}}));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(std::get<AckCommand>(*ack).rn16, rn16);

  const auto read = parse_command(
      encode_command(Command{ReadCommand{rn16, static_cast<std::uint8_t>(rn16 % 7)}}));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(std::get<ReadCommand>(*read).rn16, rn16);
}

INSTANTIATE_TEST_SUITE_P(Rn16Grid, CommandFieldSweep,
                         ::testing::Values(0x0000, 0x0001, 0x8000, 0xFFFF,
                                           0x5A5A, 0x1234));

}  // namespace
}  // namespace ecocap::phy
