#pragma once

// Shared golden-vector plumbing for the regression suites
// (test_golden_vectors, test_scenario). A golden file is flat JSON:
//   {"name": "...", "hash": "<16 hex>",
//    "scalars": {"k": "hex:<16 hex> dec:<%.17g>", ...}}
// The hash is FNV-1a over the bit patterns of a computed double series, so
// any bit-level drift in a pinned pipeline fails loudly. The decimal in
// each scalar is for humans; comparisons use the hex bit pattern only.
//
// Regenerating after an intentional change: run the owning test binary
// with --regen (parsed by golden_test_main) and commit the rewritten
// files alongside the change that caused them.

#include <gtest/gtest.h>

#include <bit>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace ecocap::golden {

/// Set by golden_test_main when the binary runs with --regen.
inline bool g_regen = false;

// --- FNV-1a over double bit patterns ---------------------------------------

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline void fnv_byte(std::uint64_t& h, std::uint8_t b) {
  h ^= b;
  h *= kFnvPrime;
}

inline void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    fnv_byte(h, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline std::uint64_t hash_series(const std::vector<double>& values) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, values.size());
  for (const double v : values) fnv_u64(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

// --- golden file I/O --------------------------------------------------------

struct Golden {
  std::uint64_t hash = 0;
  std::map<std::string, std::uint64_t> scalars;
};

inline std::string golden_path(const std::string& dir,
                               const std::string& name) {
  return dir + "/" + name + ".json";
}

inline bool load_golden(const std::string& dir, const std::string& name,
                        Golden& out) {
  std::FILE* f = std::fopen(golden_path(dir, name).c_str(), "r");
  if (!f) return false;
  std::string text;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  auto hex_after = [&text](std::size_t pos) {
    return std::strtoull(text.c_str() + pos, nullptr, 16);
  };
  const std::size_t hpos = text.find("\"hash\": \"");
  if (hpos == std::string::npos) return false;
  out.hash = hex_after(hpos + 9);
  // Scalars: every occurrence of "key": "hex:....".
  std::size_t pos = 0;
  while ((pos = text.find("\"hex:", pos)) != std::string::npos) {
    const std::size_t key_end = text.rfind('"', text.rfind(':', pos) - 1);
    const std::size_t key_start = text.rfind('"', key_end - 1) + 1;
    out.scalars[text.substr(key_start, key_end - key_start)] =
        hex_after(pos + 5);
    pos += 5;
  }
  return true;
}

inline void write_golden(const std::string& dir, const std::string& name,
                         std::uint64_t hash,
                         const std::map<std::string, double>& scalars) {
  std::FILE* f = std::fopen(golden_path(dir, name).c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << golden_path(dir, name);
  std::fprintf(f, "{\n  \"name\": \"%s\",\n", name.c_str());
  std::fprintf(f, "  \"hash\": \"%016" PRIx64 "\",\n", hash);
  std::fprintf(f, "  \"scalars\": {");
  bool first = true;
  for (const auto& [key, value] : scalars) {
    std::fprintf(f, "%s\n    \"%s\": \"hex:%016" PRIx64 " dec:%.17g\"",
                 first ? "" : ",", key.c_str(),
                 std::bit_cast<std::uint64_t>(value), value);
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
}

/// Regenerate or verify one golden vector under `dir`.
inline void check_golden(const std::string& dir, const std::string& name,
                         const std::vector<double>& series,
                         const std::map<std::string, double>& scalars) {
  const std::uint64_t hash = hash_series(series);
  if (g_regen) {
    write_golden(dir, name, hash, scalars);
    SUCCEED() << "regenerated " << golden_path(dir, name);
    return;
  }
  Golden golden;
  ASSERT_TRUE(load_golden(dir, name, golden))
      << "missing golden vector " << golden_path(dir, name)
      << " — run this test binary with --regen and commit the result";
  EXPECT_EQ(golden.hash, hash)
      << name << ": series hash drifted — the pinned pipeline is no "
      << "longer bit-identical to the checked-in vector. If the change is "
      << "intentional, rerun with --regen and commit.";
  for (const auto& [key, value] : scalars) {
    const auto it = golden.scalars.find(key);
    ASSERT_NE(it, golden.scalars.end()) << name << ": missing scalar " << key;
    EXPECT_EQ(it->second, std::bit_cast<std::uint64_t>(value))
        << name << "." << key << ": expected "
        << std::bit_cast<double>(it->second) << ", got " << value;
  }
}

/// Drop-in main() for golden test binaries: strips --regen, then runs
/// gtest as usual.
inline int golden_test_main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") g_regen = true;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

}  // namespace ecocap::golden
