#include <gtest/gtest.h>

#include <string>

#include "dsp/rng.hpp"
#include "phy/bits.hpp"
#include "phy/crc.hpp"
#include "phy/pie.hpp"

namespace ecocap::phy {
namespace {

TEST(Bits, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes{0xDE, 0xAD, 0x01};
  const Bits bits = bits_from_bytes(bytes);
  ASSERT_EQ(bits.size(), 24u);
  EXPECT_EQ(bits[0], 1);  // MSB of 0xDE
  EXPECT_EQ(bytes_from_bits(bits), bytes);
}

TEST(Bits, PartialByteZeroPadded) {
  const Bits bits{1, 0, 1};
  const auto bytes = bytes_from_bits(bits);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xA0);
}

TEST(Bits, AppendReadUintRoundTrip) {
  Bits bits;
  append_uint(bits, 0xBEEF, 16);
  append_uint(bits, 5, 3);
  EXPECT_EQ(read_uint(bits, 0, 16), 0xBEEFu);
  EXPECT_EQ(read_uint(bits, 16, 3), 5u);
  EXPECT_THROW((void)read_uint(bits, 16, 8), std::out_of_range);
  EXPECT_THROW(append_uint(bits, 1, 40), std::invalid_argument);
}

TEST(Bits, ToStringAndHamming) {
  const Bits a{1, 0, 1, 1};
  EXPECT_EQ(to_string(a), "1011");
  const Bits b{1, 1, 1, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  const Bits c{1, 1};
  EXPECT_THROW((void)hamming_distance(a, c), std::invalid_argument);
}

TEST(Crc, Crc16KnownBehaviour) {
  // CRC of data + its own CRC with final-XOR convention: re-checking via
  // check_crc16 must pass for any payload.
  dsp::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Bits bits = random_bits(48, rng);
    append_crc16(bits);
    EXPECT_TRUE(check_crc16(bits));
  }
}

TEST(Crc, DetectsSingleBitErrors) {
  dsp::Rng rng(2);
  Bits bits = random_bits(32, rng);
  append_crc16(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    Bits corrupted = bits;
    corrupted[i] ^= 1;
    EXPECT_FALSE(check_crc16(corrupted)) << "bit " << i;
  }
}

TEST(Crc, DetectsAllDoubleBitErrors32) {
  dsp::Rng rng(3);
  Bits bits = random_bits(16, rng);
  append_crc16(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    for (std::size_t j = i + 1; j < bits.size(); ++j) {
      Bits c = bits;
      c[i] ^= 1;
      c[j] ^= 1;
      EXPECT_FALSE(check_crc16(c)) << i << "," << j;
    }
  }
}

TEST(Crc, Crc5Deterministic) {
  const Bits a{1, 0, 1, 1, 0, 0, 1, 0};
  EXPECT_EQ(crc5(a), crc5(a));
  Bits b = a;
  b[3] ^= 1;
  EXPECT_NE(crc5(a), crc5(b));
}

TEST(Crc, Crc5GoldenVectors) {
  // EPC Gen2 CRC-5 (poly 0x09, preset 0x09), MSB-first. Vectors computed
  // from an independent bit-serial reference implementation.
  EXPECT_EQ(crc5(Bits{}), 0x09);  // preset: empty message leaves the register
  EXPECT_EQ(crc5(Bits(8, 0)), 0x15);
  EXPECT_EQ(crc5(Bits(8, 1)), 0x06);
  // Gen2 Query command prefix (code 0b1000) + 4-bit Q field.
  Bits query_q0;
  append_uint(query_q0, 0b1000, 4);
  append_uint(query_q0, 0, 4);
  EXPECT_EQ(crc5(query_q0), 0x0B);
  Bits query_q3;
  append_uint(query_q3, 0b1000, 4);
  append_uint(query_q3, 3, 4);
  EXPECT_EQ(crc5(query_q3), 0x10);
}

TEST(Crc, Crc16GoldenVectors) {
  // Gen2's CRC-16 (poly 0x1021, preset 0xFFFF, final XOR 0xFFFF) is
  // CRC-16/GENIBUS; its published check value over ASCII "123456789" is
  // 0xD64E. Bit-serial MSB-first over the byte stream must reproduce it.
  Bits check;
  for (char c : std::string("123456789")) {
    append_uint(check, static_cast<std::uint32_t>(c), 8);
  }
  EXPECT_EQ(crc16(check), 0xD64E);
  EXPECT_EQ(crc16(Bits{}), 0x0000);  // preset XOR final-XOR cancel
  EXPECT_EQ(crc16(Bits(16, 0)), 0xE2F0);
  Bits word;
  append_uint(word, 0x1234, 16);
  EXPECT_EQ(crc16(word), 0xF136);
}

TEST(Crc, Crc5AppendCheckRoundTrip) {
  dsp::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Bits bits = random_bits(8, rng);
    append_crc5(bits);
    EXPECT_TRUE(check_crc5(bits));
    // Any single-bit corruption of a query-sized frame must be caught.
    for (std::size_t i = 0; i < bits.size(); ++i) {
      Bits corrupted = bits;
      corrupted[i] ^= 1;
      EXPECT_FALSE(check_crc5(corrupted)) << "bit " << i;
    }
  }
}

TEST(Crc, TooShortFails) {
  const Bits tiny{1, 0, 1};
  EXPECT_FALSE(check_crc16(tiny));
  EXPECT_FALSE(check_crc5(tiny));
}

TEST(Pie, PowerDutyAtLeastHalfForZeros) {
  // Paper §3.3: PIE delivers >= 50% power even for all-zero streams.
  const PieParams p;
  EXPECT_NEAR(p.power_duty(0.0), 0.5, 1e-12);
  EXPECT_GT(p.power_duty(0.5), 0.5);
  EXPECT_GT(p.power_duty(1.0), p.power_duty(0.5));
}

TEST(Pie, SymbolTimingDefinitions) {
  PieParams p;
  p.tari = 1.0e-3;
  p.pw_fraction = 0.5;
  p.one_length = 2.0;
  EXPECT_DOUBLE_EQ(p.pw(), 0.5e-3);
  EXPECT_DOUBLE_EQ(p.zero_high(), 0.5e-3);
  EXPECT_DOUBLE_EQ(p.one_high(), 1.5e-3);
}

TEST(Pie, EncodeDecodeRoundTrip) {
  const Real fs = 1.0e6;
  dsp::Rng rng(7);
  const Bits payload = random_bits(32, rng);
  const Signal wave = pie_encode(payload, PieParams{}, fs);
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;
  const auto decoded = pie_decode(levels, fs, payload.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
  EXPECT_NEAR(decoded->rtcal, 3.0e-3, 1e-4);  // tari * (1 + one_length)
  EXPECT_NEAR(decoded->pivot, 1.5e-3, 1e-4);
}

TEST(Pie, StreamDecodeFindsFrameEnd) {
  const Real fs = 1.0e6;
  const Bits payload{1, 0, 1, 1, 0, 0, 1, 0, 1};
  const Signal wave = pie_encode(payload, PieParams{}, fs);
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;
  const auto decoded = pie_decode_stream(levels, fs);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

TEST(Pie, StreamDecodeMultipleFrames) {
  const Real fs = 1.0e6;
  const Bits a{1, 0, 1};
  const Bits b{0, 0, 1, 1};
  Signal wave = pie_encode(a, PieParams{}, fs);
  const Signal second = pie_encode(b, PieParams{}, fs);
  wave.insert(wave.end(), second.begin(), second.end());
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;

  const auto first = pie_decode_stream(levels, fs);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, a);
  const auto next = pie_decode_stream(levels, fs, PieParams{}, first->end_index);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->payload, b);
}

TEST(Pie, DecodeRejectsGarbage) {
  const std::vector<bool> junk(1000, true);
  EXPECT_FALSE(pie_decode(junk, 1.0e6, 8).has_value());
  const std::vector<bool> empty;
  EXPECT_FALSE(pie_decode_stream(empty, 1.0e6).has_value());
}

TEST(Pie, DebouncesGlitches) {
  const Real fs = 1.0e6;
  const Bits payload{1, 0, 1, 0};
  const Signal wave = pie_encode(payload, PieParams{}, fs);
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;
  // Inject 20-sample glitches (far below pw/4 = 125 us = 125 samples).
  for (std::size_t i = 5000; i < levels.size(); i += 7919) {
    for (std::size_t j = i; j < i + 20 && j < levels.size(); ++j) {
      levels[j] = !levels[j];
    }
  }
  const auto decoded = pie_decode(levels, fs, payload.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

/// Property sweep: PIE round-trips across timing parameter combinations.
struct PieParamCase {
  double tari;
  double pw_fraction;
  double one_length;
};

class PieParamSweep : public ::testing::TestWithParam<PieParamCase> {};

TEST_P(PieParamSweep, RoundTrips) {
  const auto c = GetParam();
  PieParams p;
  p.tari = c.tari;
  p.pw_fraction = c.pw_fraction;
  p.one_length = c.one_length;
  const Real fs = 2.0e6;
  dsp::Rng rng(11);
  const Bits payload = random_bits(24, rng);
  const Signal wave = pie_encode(payload, p, fs);
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;
  const auto decoded = pie_decode(levels, fs, payload.size(), p);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Timings, PieParamSweep,
    ::testing::Values(PieParamCase{0.5e-3, 0.5, 2.0},
                      PieParamCase{1.0e-3, 0.5, 2.0},
                      PieParamCase{1.0e-3, 0.4, 1.8},
                      PieParamCase{2.0e-3, 0.5, 2.5},
                      PieParamCase{0.25e-3, 0.5, 2.0}));

}  // namespace
}  // namespace ecocap::phy
