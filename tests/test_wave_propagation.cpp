#include <gtest/gtest.h>

#include <cmath>

#include "wave/attenuation.hpp"
#include "wave/frequency_response.hpp"
#include "wave/helmholtz.hpp"
#include "wave/ray_tracer.hpp"
#include "wave/snell.hpp"

namespace ecocap::wave {
namespace {

const Material kNc = materials::normal_concrete();
const Material kRef = materials::reference_concrete();

TEST(Attenuation, SWaveLossLowerThanP) {
  // Paper §3.1 [39]: S attenuates less than P in concrete.
  const Real ap = attenuation_coefficient(kRef, WaveMode::kPrimary, 230.0e3);
  const Real as = attenuation_coefficient(kRef, WaveMode::kSecondary, 230.0e3);
  EXPECT_LT(as, ap);
}

TEST(Attenuation, GrowsWithFrequency) {
  Real prev = 0.0;
  for (Real f : {50.0e3, 150.0e3, 250.0e3, 350.0e3}) {
    const Real a = attenuation_coefficient(kRef, WaveMode::kSecondary, f);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(Attenuation, ScatteringKneeSteepensLoss) {
  // Loss growth above the knee (>260 kHz) is much steeper than below.
  const Real low_ratio =
      attenuation_coefficient(kRef, WaveMode::kSecondary, 200.0e3) /
      attenuation_coefficient(kRef, WaveMode::kSecondary, 100.0e3);
  const Real high_ratio =
      attenuation_coefficient(kRef, WaveMode::kSecondary, 390.0e3) /
      attenuation_coefficient(kRef, WaveMode::kSecondary, 270.0e3);
  EXPECT_NEAR(low_ratio, 2.0, 0.01);  // linear regime
  EXPECT_GT(high_ratio, 3.0);         // quartic regime
}

TEST(Attenuation, FactorIsExponential) {
  const Real a = attenuation_coefficient(kRef, WaveMode::kSecondary, 230.0e3);
  EXPECT_NEAR(attenuation_factor(kRef, WaveMode::kSecondary, 230.0e3, 2.0),
              std::exp(-2.0 * a), 1e-12);
  EXPECT_THROW(
      (void)attenuation_factor(kRef, WaveMode::kSecondary, 230.0e3, -1.0),
      std::invalid_argument);
}

TEST(Spreading, OrderingNearAndFar) {
  // At 2 m, waveguide > cylindrical > spherical amplitude survival.
  const Real r = 2.0;
  const Real sph = spreading_factor(Spreading::kSpherical, r);
  const Real cyl = spreading_factor(Spreading::kCylindrical, r);
  const Real wg = spreading_factor(Spreading::kWaveguide, r);
  EXPECT_LT(sph, cyl);
  EXPECT_LT(cyl, wg);
  // Inside the reference radius all factors are 1.
  EXPECT_EQ(spreading_factor(Spreading::kSpherical, 0.01), 1.0);
}

TEST(FrequencyResponse, ResonanceInCarrierBand) {
  // Fig. 5: all blocks resonate between 200 and 250 kHz.
  for (const auto& m : materials::table1_concretes()) {
    const ConcreteFrequencyResponse fr(m, 0.15);
    const Real f0 = fr.resonant_frequency();
    EXPECT_GE(f0, 200.0e3) << m.name;
    EXPECT_LE(f0, 250.0e3) << m.name;
  }
}

TEST(FrequencyResponse, UhpcOutperformsNc) {
  // Fig. 5: UHPC/UHPFRC peak responses far exceed NC's.
  const ConcreteFrequencyResponse nc(materials::normal_concrete(), 0.15);
  const ConcreteFrequencyResponse uhpc(materials::uhpc(), 0.15);
  const ConcreteFrequencyResponse uhpfrc(materials::uhpfrc(), 0.15);
  const Real f = 230.0e3;
  EXPECT_GT(uhpc.amplitude_mv(f), 1.5 * nc.amplitude_mv(f));
  EXPECT_GE(uhpfrc.amplitude_mv(f), uhpc.amplitude_mv(f) * 0.95);
}

TEST(FrequencyResponse, RollsOffPastBand) {
  const ConcreteFrequencyResponse fr(kNc, 0.15);
  const Real peak = fr.amplitude_mv(fr.resonant_frequency());
  EXPECT_LT(fr.amplitude_mv(350.0e3), 0.2 * peak);
  EXPECT_LT(fr.amplitude_mv(50.0e3), 0.5 * peak);
}

TEST(FrequencyResponse, ThinnerBlockRespondsStronger) {
  const ConcreteFrequencyResponse thin(kNc, 0.07);
  const ConcreteFrequencyResponse thick(kNc, 0.15);
  EXPECT_GT(thin.amplitude_mv(230.0e3), thick.amplitude_mv(230.0e3));
}

TEST(FrequencyResponse, AmplitudeScalesWithDrive) {
  const ConcreteFrequencyResponse fr(kNc, 0.15);
  EXPECT_NEAR(fr.amplitude_mv(230.0e3, 200.0),
              2.0 * fr.amplitude_mv(230.0e3, 100.0), 1e-9);
}

TEST(Helmholtz, Eq5ExactEvaluation) {
  // Eq. 5 with the paper's printed geometry evaluates to ~159 kHz at
  // Cs = 1941 m/s (see the DESIGN.md calibration note).
  const HelmholtzResonator hr = HelmholtzResonator::paper_prototype();
  EXPECT_NEAR(hr.resonant_frequency(1941.0), 159.0e3, 2.0e3);
}

TEST(Helmholtz, SolverHitsTarget) {
  const HelmholtzResonator base = HelmholtzResonator::paper_prototype();
  const Real an =
      HelmholtzResonator::solve_neck_area(230.0e3, 1941.0,
                                          base.cavity_volume, base.neck_length);
  HelmholtzResonator tuned = base;
  tuned.neck_area = an;
  EXPECT_NEAR(tuned.resonant_frequency(1941.0), 230.0e3, 1.0);
}

TEST(Helmholtz, GainPeaksAtResonance) {
  const HelmholtzResonator hr = HelmholtzResonator::paper_prototype();
  const Real f0 = hr.resonant_frequency(1941.0);
  const Real at_res = hr.gain(f0, 1941.0);
  EXPECT_GT(at_res, hr.gain(f0 * 0.6, 1941.0));
  EXPECT_GT(at_res, hr.gain(f0 * 1.6, 1941.0));
  EXPECT_NEAR(at_res, 3.0, 0.3);  // default peak gain
}

TEST(Helmholtz, InvalidGeometryThrows) {
  HelmholtzResonator bad{0.0, 1e-3, 1e-9};
  EXPECT_THROW((void)bad.resonant_frequency(1941.0), std::invalid_argument);
}

TEST(HelmholtzArray, DetunedCellsWidenBand) {
  const HelmholtzResonator base = HelmholtzResonator::paper_prototype();
  const HelmholtzArray arr(base, 7, 0.12);
  const HelmholtzArray single(base, 1);
  const Real f0 = base.resonant_frequency(1941.0);
  // Bandwidth metric: number of sweep points with gain >= 80% of the peak.
  auto bandwidth_points = [&](auto&& gain_fn) {
    Real peak = 0.0;
    for (int i = -200; i <= 200; ++i) {
      peak = std::max(peak, gain_fn(f0 * (1.0 + 0.001 * i)));
    }
    int count = 0;
    for (int i = -200; i <= 200; ++i) {
      if (gain_fn(f0 * (1.0 + 0.001 * i)) >= 0.8 * peak) ++count;
    }
    return count;
  };
  const int bw_arr = bandwidth_points(
      [&](Real f) { return arr.gain(f, 1941.0); });
  const int bw_single = bandwidth_points(
      [&](Real f) { return single.gain(f, 1941.0); });
  EXPECT_GE(bw_arr, bw_single);
  EXPECT_EQ(arr.cell_count(), 7);
}

TEST(RayTracer, DirectPathArrivesFirst) {
  RayTracer::Config cfg;
  cfg.length = 2.0;
  cfg.thickness = 0.2;
  const RayTracer tracer(kRef, cfg);
  // Receiver sits on the 45-degree launch ray: (0.1, 0.1).
  const auto taps =
      tracer.trace(0.0, deg_to_rad(45.0), Point2{0.1, 0.1}, 0.03);
  ASSERT_FALSE(taps.empty());
  for (std::size_t i = 1; i < taps.size(); ++i) {
    EXPECT_GE(taps[i].delay, taps.front().delay);
  }
  // The first arrival's delay should be near straight-line distance / Cs.
  const Real d = std::sqrt(0.1 * 0.1 + 0.1 * 0.1);
  EXPECT_NEAR(taps.front().delay, d / kRef.cs, 0.3 * d / kRef.cs);
}

TEST(RayTracer, MarginCollectsMoreEnergyThanMiddle) {
  // Fig. 18 physics: nodes near the wall margins see the incident and
  // boundary-reflected passes superpose coherently (displacement antinode)
  // and harvest more than mid-section nodes.
  RayTracer::Config cfg;
  cfg.length = 2.0;
  cfg.thickness = 0.3;
  cfg.rays = 96;
  cfg.fan_half_angle = 0.5;
  const RayTracer tracer(kRef, cfg);
  const Real launch = deg_to_rad(50.0);
  const Real e_margin =
      tracer.coherent_energy_at(0.0, launch, Point2{1.0, 0.28}, 0.04) +
      tracer.coherent_energy_at(0.0, launch, Point2{1.0, 0.02}, 0.04);
  const Real e_middle =
      2.0 * tracer.coherent_energy_at(0.0, launch, Point2{1.0, 0.15}, 0.04);
  EXPECT_GT(e_margin, e_middle);
}

TEST(RayTracer, EnergyMapDimensions) {
  RayTracer::Config cfg;
  cfg.rays = 16;
  const RayTracer tracer(kRef, cfg);
  const auto map = tracer.energy_map(0.0, deg_to_rad(45.0), 8, 4);
  EXPECT_EQ(map.size(), 32u);
  Real total = 0.0;
  for (Real v : map) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_GT(total, 0.0);
}

TEST(RayTracer, FluidRejectsShearMode) {
  RayTracer::Config cfg;
  cfg.mode = WaveMode::kSecondary;
  EXPECT_THROW(RayTracer(materials::water(), cfg), std::invalid_argument);
}

TEST(RayTracer, InvalidDomainThrows) {
  RayTracer::Config cfg;
  cfg.length = 0.0;
  EXPECT_THROW(RayTracer(kRef, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ecocap::wave
