// Workspace / WorkspacePool semantics: zero-filled leases, capacity reuse,
// allocation accounting, and the end-to-end guarantee the zero-copy pipeline
// rests on — pooled buffers never leak state between interrogations.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/workspace_pool.hpp"
#include "dsp/workspace.hpp"

namespace {

using ecocap::core::InterrogationResult;
using ecocap::core::LinkSimulator;
using ecocap::core::SystemConfig;
using ecocap::core::WorkspacePool;
using ecocap::dsp::Workspace;

TEST(Workspace, LeasesAreZeroFilledEvenAfterDirtyReturn) {
  Workspace ws;
  {
    auto lease = ws.real(64);
    ASSERT_EQ(lease->size(), 64u);
    for (auto& v : *lease) v = 7.5;  // dirty the buffer
  }
  // The next, shorter checkout reuses the same capacity but must read as a
  // fresh Signal(n, 0.0): no stale tail, no stale head.
  auto again = ws.real(16);
  ASSERT_EQ(again->size(), 16u);
  EXPECT_GE(again->capacity(), 16u);
  for (const auto& v : *again) EXPECT_EQ(v, 0.0);
}

TEST(Workspace, ReusesCapacityAndCountsAllocations) {
  Workspace ws;
  { auto a = ws.real(1024); }
  EXPECT_EQ(ws.stats().checkouts, 1u);
  EXPECT_EQ(ws.stats().heap_allocations, 1u);  // cold pool: a real allocation
  EXPECT_EQ(ws.pooled_buffers(), 1u);

  { auto b = ws.real(512); }  // fits in the returned 1024-capacity buffer
  EXPECT_EQ(ws.stats().checkouts, 2u);
  EXPECT_EQ(ws.stats().heap_allocations, 1u);  // served from the free list

  { auto c = ws.real(4096); }  // grows the pooled buffer: counts as a miss
  EXPECT_EQ(ws.stats().checkouts, 3u);
  EXPECT_EQ(ws.stats().heap_allocations, 2u);
}

TEST(Workspace, ComplexLeasesArePooledIndependently) {
  Workspace ws;
  { auto z = ws.cplx(256); }
  { auto z2 = ws.cplx(128); }
  EXPECT_EQ(ws.stats().checkouts, 2u);
  EXPECT_EQ(ws.stats().heap_allocations, 1u);
}

TEST(Workspace, UnpooledModeAllocatesEveryCheckout) {
  Workspace ws;
  ws.set_pooling(false);
  { auto a = ws.real(100); }
  { auto b = ws.real(100); }
  EXPECT_EQ(ws.stats().checkouts, 2u);
  EXPECT_EQ(ws.stats().heap_allocations, 2u);
  EXPECT_EQ(ws.pooled_buffers(), 0u);  // returned buffers are dropped
}

bool bitwise_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_results_identical(const InterrogationResult& a,
                              const InterrogationResult& b) {
  EXPECT_EQ(a.node_powered, b.node_powered);
  EXPECT_EQ(a.uplink_decoded, b.uplink_decoded);
  EXPECT_EQ(a.uplink_payload, b.uplink_payload);
  EXPECT_TRUE(bitwise_equal(a.uplink_snr_db, b.uplink_snr_db));
  EXPECT_TRUE(bitwise_equal(a.carrier_estimate, b.carrier_estimate));
  EXPECT_TRUE(bitwise_equal(a.cap_voltage, b.cap_voltage));
}

// The satellite guarantee of the zero-copy refactor: two interrogations of
// DIFFERENT frame lengths run back-to-back on one pooled workspace (the
// second reusing the first's larger buffers) must be bit-identical to the
// allocate-per-checkout path. Any stale-tail leakage between checkouts
// would surface here.
TEST(WorkspacePool, PooledInterrogationsBitIdenticalToUnpooled) {
  SystemConfig cfg = ecocap::core::default_system();
  cfg.channel.distance = 0.10;
  cfg.channel.noise_sigma = 1e-4;

  ecocap::dsp::Rng prng(77);
  const ecocap::phy::Bits long_payload = ecocap::phy::random_bits(48, prng);
  const ecocap::phy::Bits short_payload = ecocap::phy::random_bits(16, prng);

  auto run_pair = [&]() {
    std::vector<InterrogationResult> out;
    LinkSimulator sim_a(cfg);
    out.push_back(sim_a.uplink_once(long_payload));
    LinkSimulator sim_b(cfg);
    out.push_back(sim_b.uplink_once(short_payload));
    return out;
  };

  WorkspacePool& pool = WorkspacePool::shared();
  pool.set_pooling(true);
  pool.clear();
  const auto pooled = run_pair();

  pool.set_pooling(false);
  pool.clear();
  const auto unpooled = run_pair();
  pool.set_pooling(true);  // restore the default for other tests

  ASSERT_EQ(pooled.size(), 2u);
  ASSERT_EQ(unpooled.size(), 2u);
  // The rounds should actually exercise the decode chain.
  EXPECT_TRUE(pooled[0].uplink_decoded);
  EXPECT_TRUE(pooled[1].uplink_decoded);
  expect_results_identical(pooled[0], unpooled[0]);
  expect_results_identical(pooled[1], unpooled[1]);
}

// A brownout aborts the uplink mid-frame (the emission is truncated and the
// MCU loses state). Every lease taken during the aborted interrogation must
// still be RAII-returned to its pool — a leak here would starve long
// monitoring campaigns on faulty sites.
TEST(WorkspacePool, BrownoutAbortedInterrogationReturnsAllLeases) {
  SystemConfig cfg = ecocap::core::default_system();
  cfg.channel.distance = 0.10;
  cfg.channel.noise_sigma = 1e-4;
  cfg.fault.node.brownout_prob = 1.0;  // every uplink frame aborts

  WorkspacePool& pool = WorkspacePool::shared();
  pool.set_pooling(true);
  pool.clear();
  pool.reset_stats();

  ecocap::dsp::Rng prng(88);
  LinkSimulator sim(cfg);
  (void)sim.uplink_once(ecocap::phy::random_bits(32, prng));
  EXPECT_GT(sim.injector().counters().brownouts, 0u);

  const Workspace::Stats stats = pool.total_stats();
  EXPECT_GT(stats.checkouts, 0u);
  EXPECT_EQ(stats.returns, stats.checkouts);
}

// Same bit-identity guarantee as above, but with an active FaultPlan: the
// injector draws from its own seeded stream, so pooled and unpooled runs see
// the exact same bursts/dropouts/brownouts and must agree bit-for-bit.
TEST(WorkspacePool, PooledBitIdenticalToUnpooledUnderActiveFaultPlan) {
  SystemConfig cfg = ecocap::core::default_system();
  cfg.channel.distance = 0.10;
  cfg.channel.noise_sigma = 1e-4;
  cfg.fault = ecocap::fault::FaultPlan::at_intensity(0.5);

  ecocap::dsp::Rng prng(99);
  const ecocap::phy::Bits long_payload = ecocap::phy::random_bits(48, prng);
  const ecocap::phy::Bits short_payload = ecocap::phy::random_bits(16, prng);

  auto run_pair = [&]() {
    std::vector<InterrogationResult> out;
    LinkSimulator sim_a(cfg);
    out.push_back(sim_a.uplink_once(long_payload));
    LinkSimulator sim_b(cfg);
    out.push_back(sim_b.uplink_once(short_payload));
    return out;
  };

  WorkspacePool& pool = WorkspacePool::shared();
  pool.set_pooling(true);
  pool.clear();
  const auto pooled = run_pair();

  pool.set_pooling(false);
  pool.clear();
  const auto unpooled = run_pair();
  pool.set_pooling(true);  // restore the default for other tests

  ASSERT_EQ(pooled.size(), 2u);
  ASSERT_EQ(unpooled.size(), 2u);
  expect_results_identical(pooled[0], unpooled[0]);
  expect_results_identical(pooled[1], unpooled[1]);
}

TEST(WorkspacePool, TotalStatsAggregateLocalWorkspaces) {
  WorkspacePool& pool = WorkspacePool::shared();
  pool.reset_stats();
  {
    Workspace& ws = pool.local();
    auto lease = ws.real(32);
  }
  const Workspace::Stats stats = pool.total_stats();
  EXPECT_GE(stats.checkouts, 1u);
}

}  // namespace
