#include <gtest/gtest.h>

#include <cmath>

#include "core/workspace_pool.hpp"
#include "shm/bridge.hpp"
#include "shm/health.hpp"
#include "shm/monitor.hpp"
#include "shm/report.hpp"
#include "shm/pedestrian.hpp"
#include "shm/timeseries.hpp"
#include "shm/weather.hpp"

namespace ecocap::shm {
namespace {

TEST(TimeSeries, StatsOfKnownData) {
  TimeSeries ts("t", 1.0);
  for (Real v : {1.0, 2.0, 3.0, 4.0}) ts.push(v);
  const auto s = ts.stats();
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(TimeSeries, WindowedStats) {
  TimeSeries ts("t", 1.0);
  for (int i = 0; i < 10; ++i) ts.push(static_cast<Real>(i));
  const auto s = ts.stats(5, 10);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
}

TEST(TimeSeries, RollingStddevFlatIsZero) {
  TimeSeries ts("t", 1.0);
  for (int i = 0; i < 100; ++i) ts.push(5.0);
  const auto r = ts.rolling_stddev(10);
  EXPECT_NEAR(r.back(), 0.0, 1e-9);
}

TEST(TimeSeries, RollingStddevDetectsBurst) {
  TimeSeries ts("t", 1.0);
  for (int i = 0; i < 200; ++i) ts.push((i >= 100 && i < 150) ? ((i % 2) ? 1.0 : -1.0) : 0.0);
  const auto r = ts.rolling_stddev(20);
  EXPECT_GT(r[130], 10.0 * (r[50] + 1e-12));
}

TEST(TimeSeries, RollingStddevOutParamMatchesAllocatingVersion) {
  TimeSeries ts("t", 1.0);
  for (int i = 0; i < 200; ++i) {
    ts.push(std::sin(0.37 * i) + ((i > 120) ? 2.0 : 0.0));
  }
  const auto allocating = ts.rolling_stddev(16);
  std::vector<Real> out(ts.size());
  ts.rolling_stddev(16, out);
  ASSERT_EQ(allocating.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(allocating[i], out[i]) << "sample " << i;
  }
}

TEST(TimeSeries, RollingStddevOutParamRejectsBadArguments) {
  TimeSeries ts("t", 1.0);
  for (int i = 0; i < 10; ++i) ts.push(1.0);
  std::vector<Real> wrong(ts.size() + 1);
  EXPECT_THROW(ts.rolling_stddev(4, wrong), std::invalid_argument);
  std::vector<Real> right(ts.size());
  EXPECT_THROW(ts.rolling_stddev(0, right), std::invalid_argument);
}

TEST(TimeSeries, ReservedPushesKeepCapacityStable) {
  TimeSeries ts("t", 1.0);
  ts.reserve(1000);
  const std::size_t cap = ts.capacity();
  ASSERT_GE(cap, 1000u);
  for (int i = 0; i < 1000; ++i) ts.push(static_cast<Real>(i));
  EXPECT_EQ(ts.capacity(), cap);  // no reallocation happened
}

TEST(TimeSeries, BlockMeanDownsamples) {
  TimeSeries ts("t", 1.0);
  for (int i = 0; i < 10; ++i) ts.push(static_cast<Real>(i));
  const TimeSeries d = ts.block_mean(5);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.at(0), 2.0);
  EXPECT_DOUBLE_EQ(d.at(1), 7.0);
  EXPECT_DOUBLE_EQ(d.dt(), 5.0);
}

TEST(Health, Table2HongKongBoundaries) {
  // Spot checks straight from Table 2 (Hong Kong column).
  EXPECT_EQ(grade_pao(3.5, Region::kHongKong), HealthLevel::kA);
  EXPECT_EQ(grade_pao(2.5, Region::kHongKong), HealthLevel::kB);
  EXPECT_EQ(grade_pao(1.8, Region::kHongKong), HealthLevel::kC);
  EXPECT_EQ(grade_pao(1.0, Region::kHongKong), HealthLevel::kD);
  EXPECT_EQ(grade_pao(0.6, Region::kHongKong), HealthLevel::kE);
  EXPECT_EQ(grade_pao(0.3, Region::kHongKong), HealthLevel::kF);
}

TEST(Health, Table2UnitedStatesBoundaries) {
  EXPECT_EQ(grade_pao(4.0, Region::kUnitedStates), HealthLevel::kA);
  EXPECT_EQ(grade_pao(3.0, Region::kUnitedStates), HealthLevel::kB);
  EXPECT_EQ(grade_pao(2.0, Region::kUnitedStates), HealthLevel::kC);
  EXPECT_EQ(grade_pao(1.0, Region::kUnitedStates), HealthLevel::kD);
  EXPECT_EQ(grade_pao(0.5, Region::kUnitedStates), HealthLevel::kE);
  EXPECT_EQ(grade_pao(0.4, Region::kUnitedStates), HealthLevel::kF);
}

TEST(Health, NegativePaoThrows) {
  EXPECT_THROW((void)grade_pao(-1.0, Region::kManila), std::invalid_argument);
}

TEST(Health, LetterMapping) {
  EXPECT_EQ(health_letter(HealthLevel::kA), 'A');
  EXPECT_EQ(health_letter(HealthLevel::kF), 'F');
}

TEST(Health, LimitChecks) {
  // Within every limit.
  EXPECT_TRUE(check_limits(0.1, 0.05, 100.0e6, 0.01, 3.0).all_ok());
  // Vertical acceleration over 0.7 m/s^2 (the bridge's design limit).
  EXPECT_FALSE(check_limits(0.9, 0.05, 100.0e6, 0.01, 3.0).vertical_ok);
  // Overloaded deck: < 1 m^2 per pedestrian.
  EXPECT_FALSE(check_limits(0.1, 0.05, 100.0e6, 0.01, 0.8).pao_ok);
  // Steel past 355 MPa.
  EXPECT_FALSE(check_limits(0.1, 0.05, 400.0e6, 0.01, 3.0).stress_ok);
}

TEST(Weather, DiurnalCycleAndBounds) {
  WeatherModel w(WeatherModel::Config{}, 1);
  for (Real t = 0.0; t < 2.0; t += 0.04) {
    const WeatherSample s = w.sample(t);
    EXPECT_GT(s.temperature_c, 15.0);
    EXPECT_LT(s.temperature_c, 45.0);
    EXPECT_GE(s.humidity_pct, 30.0);
    EXPECT_LE(s.humidity_pct, 100.0);
    EXPECT_GE(s.wind_speed, 0.0);
  }
}

TEST(Weather, StormWindowRaisesWind) {
  WeatherModel w(WeatherModel::Config{}, 2);
  // Default storm: days 14-22 (the paper's July 15-23 window).
  Real calm_wind = 0.0, storm_wind = 0.0;
  int calm_n = 0, storm_n = 0;
  for (Real t = 0.0; t < 30.0; t += 0.1) {
    const WeatherSample s = w.sample(t);
    if (t > 2.0 && t < 12.0) {
      calm_wind += s.wind_speed;
      ++calm_n;
    }
    if (t > 16.0 && t < 20.0) {
      storm_wind += s.wind_speed;
      ++storm_n;
      EXPECT_TRUE(s.storm);
    }
  }
  EXPECT_GT(storm_wind / storm_n, 4.0 * (calm_wind / calm_n));
}

TEST(Pedestrian, CommutePeaksVisible) {
  PedestrianModel m(PedestrianModel::Config{}, 3);
  WeatherSample calm;
  // Day 4 = Monday (day 0 is Thursday 2021-07-01).
  const Real rate_peak = m.rate_per_minute(4.0 + 8.5 / 24.0, calm);
  const Real rate_night = m.rate_per_minute(4.0 + 3.0 / 24.0, calm);
  EXPECT_GT(rate_peak, 5.0 * rate_night);
}

TEST(Pedestrian, WeekendQuieter) {
  PedestrianModel m(PedestrianModel::Config{}, 4);
  WeatherSample calm;
  // Day 2 = Saturday; day 4 = Monday. Same hour.
  const Real weekend = m.rate_per_minute(2.0 + 8.5 / 24.0, calm);
  const Real weekday = m.rate_per_minute(4.0 + 8.5 / 24.0, calm);
  EXPECT_LT(weekend, weekday);
}

TEST(Pedestrian, StormSuppressesTraffic) {
  PedestrianModel m(PedestrianModel::Config{}, 5);
  WeatherSample calm;
  WeatherSample storm;
  storm.storm = true;
  const Real t = 4.0 + 8.5 / 24.0;
  EXPECT_LT(m.rate_per_minute(t, storm), 0.3 * m.rate_per_minute(t, calm));
}

TEST(Pedestrian, PaoInfiniteWhenEmpty) {
  EXPECT_TRUE(std::isinf(pedestrian_area_occupancy(67.0, 0)));
  EXPECT_NEAR(pedestrian_area_occupancy(67.0, 20), 3.35, 1e-9);
}

TEST(Bridge, GeometryMatchesPaper) {
  const BridgeGeometry g;
  EXPECT_NEAR(g.total_length, 84.24, 1e-9);
  EXPECT_NEAR(g.main_span, 64.26, 1e-9);
  EXPECT_NEAR(g.side_span, 19.98, 1e-9);
  EXPECT_NEAR(g.main_span + g.side_span, g.total_length, 1e-9);
}

TEST(Bridge, StateRespondsToLoad) {
  FootbridgeModel bridge(FootbridgeModel::Config{}, 6);
  WeatherSample calm;
  calm.wind_speed = 2.0;
  // Peak commute on a Monday.
  const BridgeState busy = bridge.step(4.0 + 8.5 / 24.0, calm);
  const BridgeState night = bridge.step(4.0 + 3.0 / 24.0, calm);
  int busy_total = busy.total_pedestrians;
  int night_total = night.total_pedestrians;
  EXPECT_GT(busy_total, night_total);
}

TEST(Bridge, SectionCountsSumToTotal) {
  FootbridgeModel bridge(FootbridgeModel::Config{}, 7);
  WeatherSample calm;
  const BridgeState s = bridge.step(4.0 + 8.5 / 24.0, calm);
  int sum = 0;
  for (const auto& sec : s.sections) sum += sec.pedestrians;
  EXPECT_EQ(sum, s.total_pedestrians);
}

TEST(Bridge, StormIncreasesResponse) {
  FootbridgeModel bridge(FootbridgeModel::Config{}, 8);
  WeatherSample calm;
  calm.wind_speed = 2.0;
  WeatherSample storm;
  storm.wind_speed = 24.0;
  storm.storm = true;
  Real calm_acc = 0.0, storm_acc = 0.0;
  for (int i = 0; i < 50; ++i) {
    calm_acc += std::abs(bridge.step(3.0 + i * 0.001, calm)
                             .sections[2].vertical_acceleration);
    storm_acc += std::abs(bridge.step(16.0 + i * 0.001, storm)
                              .sections[2].vertical_acceleration);
  }
  EXPECT_GT(storm_acc, 2.0 * calm_acc);
}

TEST(Campaign, ShortRunProducesAllChannels) {
  MonitoringCampaign::Config cfg;
  cfg.days = 2.0;
  cfg.capsule_poll_hours = 12.0;
  cfg.seed = 99;
  MonitoringCampaign campaign(cfg);
  const CampaignResult r = campaign.run();
  const std::size_t expected = 2 * 24 * 60;
  EXPECT_EQ(r.acceleration.size(), expected);
  EXPECT_EQ(r.stress.size(), expected);
  EXPECT_EQ(r.humidity.size(), expected);
  EXPECT_FALSE(r.health_histogram.empty());
  EXPECT_FALSE(r.capsule_readings.empty());
}

TEST(Campaign, StormWindowFlaggedAsAnomaly) {
  MonitoringCampaign::Config cfg;
  cfg.days = 31.0;
  cfg.step_minutes = 5.0;  // keep the test quick
  cfg.baseline_window = 3 * 24 * 12;
  cfg.capsule_poll_hours = 0.0;  // skip capsule polling in this test
  cfg.capsule_count = 0;
  cfg.seed = 2021;
  MonitoringCampaign campaign(cfg);
  const CampaignResult r = campaign.run();
  // At least one anomaly overlapping the day 14-22 storm window.
  bool overlaps = false;
  for (const auto& a : r.anomalies) {
    if (a.end_day > 13.0 && a.start_day < 23.0) overlaps = true;
  }
  EXPECT_TRUE(overlaps) << r.anomalies.size() << " anomalies";
}

TEST(Campaign, HealthStaysAtBOrAbove) {
  // The paper: "bridge health always remained at B or above" (COVID-era
  // traffic). Our default config reproduces that.
  MonitoringCampaign::Config cfg;
  cfg.days = 7.0;
  cfg.capsule_count = 0;
  cfg.capsule_poll_hours = 0.0;
  cfg.seed = 5;
  MonitoringCampaign campaign(cfg);
  const CampaignResult r = campaign.run();
  long below_b = 0, total = 0;
  for (const auto& [section, hist] : r.health_histogram) {
    for (const auto& [letter, count] : hist) {
      total += count;
      if (letter != 'A' && letter != 'B') below_b += count;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(static_cast<double>(below_b) / static_cast<double>(total), 0.01);
}



TEST(Campaign, MinuteReportsSampledHourly) {
  MonitoringCampaign::Config cfg;
  cfg.days = 1.0;
  cfg.capsule_count = 0;
  cfg.capsule_poll_hours = 0.0;
  cfg.seed = 8;
  const CampaignResult r = MonitoringCampaign(cfg).run();
  // One dashboard row per hour.
  EXPECT_EQ(r.minute_reports.size(), 24u);
  for (const auto& row : r.minute_reports) {
    EXPECT_EQ(row[0].section, 'A');
    EXPECT_EQ(row[4].section, 'E');
  }
}

TEST(Campaign, OnStepHookSeesEveryStep) {
  MonitoringCampaign::Config cfg;
  cfg.days = 0.5;
  cfg.capsule_count = 0;
  cfg.capsule_poll_hours = 0.0;
  cfg.seed = 11;
  std::size_t calls = 0;
  std::size_t last_step = 0;
  Real last_t = -1.0;
  cfg.on_step = [&](std::size_t step, Real t_days, const WeatherSample&,
                    const BridgeState& state) {
    EXPECT_EQ(step, calls);  // in order, no gaps
    EXPECT_GT(t_days, last_t);
    last_step = step;
    last_t = t_days;
    ++calls;
    EXPECT_EQ(state.sections.size(), 5u);
  };
  const CampaignResult r = MonitoringCampaign(cfg).run();
  const std::size_t expected = static_cast<std::size_t>(0.5 * 24 * 60);
  EXPECT_EQ(calls, expected);
  EXPECT_EQ(last_step, expected - 1);
  EXPECT_EQ(r.acceleration.size(), expected);
}

TEST(Campaign, LeanModeKeepsAggregatesDropsSeries) {
  MonitoringCampaign::Config cfg;
  cfg.days = 1.0;
  cfg.capsule_poll_hours = 12.0;
  cfg.capsule_count = 2;
  cfg.seed = 13;

  const CampaignResult full = MonitoringCampaign(cfg).run();
  auto lean_cfg = cfg;
  lean_cfg.record_series = false;
  const CampaignResult lean = MonitoringCampaign(lean_cfg).run();

  // Sample-level logs are gone...
  EXPECT_TRUE(lean.acceleration.empty());
  EXPECT_TRUE(lean.stress.empty());
  EXPECT_TRUE(lean.minute_reports.empty());
  EXPECT_TRUE(lean.capsule_readings.empty());
  EXPECT_TRUE(lean.anomalies.empty());
  EXPECT_FALSE(full.acceleration.empty());

  // ...but the aggregates are identical to the full-fat run.
  EXPECT_EQ(lean.limit_violations, full.limit_violations);
  EXPECT_EQ(lean.health_histogram, full.health_histogram);
  EXPECT_EQ(lean.inventory_totals.read_ok, full.inventory_totals.read_ok);
  EXPECT_TRUE(lean.completed);
}

TEST(Campaign, SteadyStateRunsAddNoWorkspaceAllocations) {
  MonitoringCampaign::Config cfg;
  cfg.days = 1.0;
  cfg.step_minutes = 5.0;
  cfg.baseline_window = 24;
  cfg.capsule_count = 0;
  cfg.capsule_poll_hours = 0.0;
  cfg.seed = 17;

  auto& pool = core::WorkspacePool::shared();
  MonitoringCampaign(cfg).run();  // warm the arena (first-touch allocations)
  const auto before = pool.total_stats();
  MonitoringCampaign(cfg).run();
  const auto after = pool.total_stats();
  EXPECT_EQ(after.heap_allocations, before.heap_allocations)
      << "campaign anomaly scratch should come from pooled leases";
  EXPECT_GT(after.checkouts, before.checkouts);
  EXPECT_EQ(after.checkouts - before.checkouts,
            after.returns - before.returns);
}

TEST(Report, DashboardRendersAllSections) {
  std::array<SectionReport, 5> row;
  for (int i = 0; i < 5; ++i) {
    row[static_cast<std::size_t>(i)] =
        SectionReport{static_cast<char>('A' + i), i, HealthLevel::kA,
                      1.2};
  }
  const std::string s = render_dashboard(row);
  for (char c : {'A', 'B', 'C', 'D', 'E'}) {
    EXPECT_NE(s.find(std::string("Section ") + c), std::string::npos);
  }
}

TEST(Report, CampaignReportContainsVerdict) {
  MonitoringCampaign::Config cfg;
  cfg.days = 1.0;
  cfg.capsule_count = 0;
  cfg.capsule_poll_hours = 0.0;
  cfg.seed = 3;
  const CampaignResult r = MonitoringCampaign(cfg).run();
  const std::string report = render_campaign_report(r, 1.0);
  EXPECT_NE(report.find("verdict:"), std::string::npos);
  EXPECT_NE(report.find("health histogram"), std::string::npos);
}

TEST(Report, VerdictEscalation) {
  CampaignResult quiet;
  EXPECT_EQ(campaign_verdict(quiet), "OK");
  CampaignResult watch;
  watch.anomalies.push_back(AnomalyWindow{1.0, 2.0, 5.0});
  EXPECT_EQ(campaign_verdict(watch), "WATCH");
  CampaignResult alarm;
  alarm.limit_violations = 3;
  EXPECT_EQ(campaign_verdict(alarm), "ALARM");
}

/// Property: Table 2 grading is monotone (more space per pedestrian never
/// worsens the grade) across all four regions.
class RegionSweep : public ::testing::TestWithParam<Region> {};

TEST_P(RegionSweep, GradeMonotoneInPao) {
  int prev = 5;  // F
  for (Real pao = 0.1; pao < 5.0; pao += 0.05) {
    const int level = static_cast<int>(grade_pao(pao, GetParam()));
    EXPECT_LE(level, prev);
    prev = level;
  }
}

TEST_P(RegionSweep, ThresholdsStrictlyDecreasing) {
  const auto t = pao_thresholds(GetParam());
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i - 1], t[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegions, RegionSweep,
                         ::testing::Values(Region::kUnitedStates,
                                           Region::kHongKong,
                                           Region::kBangkok,
                                           Region::kManila));

}  // namespace
}  // namespace ecocap::shm
