#include <gtest/gtest.h>

#include "core/inventory_session.hpp"
#include "core/link_simulator.hpp"

namespace ecocap::core {
namespace {

TEST(LinkSimulator, ChargeBootsNodeAtShortRange) {
  SystemConfig cfg = default_system();
  cfg.channel.distance = 0.10;
  LinkSimulator sim(cfg);
  const InterrogationResult r = sim.charge(0.1);
  EXPECT_TRUE(r.node_powered);
  EXPECT_GT(r.cap_voltage, 1.8);
}

TEST(LinkSimulator, NoBootBeyondRange) {
  SystemConfig cfg = default_system();
  cfg.structure = channel::structures::s2_column();
  cfg.channel.distance = 2.4;     // near the end of the column
  cfg.transmitter.tx_voltage = 40.0;  // below the 50 V -> 0.56 m anchor
  LinkSimulator sim(cfg);
  const InterrogationResult r = sim.charge(0.2);
  EXPECT_FALSE(r.node_powered);
}

TEST(LinkSimulator, UplinkRoundTripDecodes) {
  SystemConfig cfg = default_system();
  cfg.channel.distance = 0.15;
  cfg.channel.noise_sigma = 1e-4;
  LinkSimulator sim(cfg);
  dsp::Rng rng(17);
  const phy::Bits payload = phy::random_bits(24, rng);
  const InterrogationResult r = sim.uplink_once(payload);
  ASSERT_TRUE(r.node_powered);
  ASSERT_TRUE(r.uplink_decoded);
  EXPECT_EQ(r.uplink_payload, payload);
  EXPECT_NEAR(r.carrier_estimate, 230.0e3, 500.0);
}

TEST(LinkSimulator, FullInterrogationReadsTemperature) {
  SystemConfig cfg = default_system();
  cfg.channel.distance = 0.15;
  cfg.channel.noise_sigma = 1e-4;
  LinkSimulator sim(cfg);
  node::ConcreteEnvironment env;
  env.temperature_c = 27.5;
  const InterrogationResult r =
      sim.interrogate(node::SensorId::kTemperature, env);
  EXPECT_TRUE(r.node_powered);
  EXPECT_TRUE(r.command_decoded);
  ASSERT_TRUE(r.sensor_value.has_value());
  EXPECT_NEAR(*r.sensor_value, 27.5, 0.5);
}

TEST(LinkSimulator, HigherNoiseDegradesSnr) {
  SystemConfig quiet = default_system();
  quiet.channel.noise_sigma = 1e-4;
  SystemConfig loud = default_system();
  loud.channel.noise_sigma = 1.2;  // comparable to the backscatter itself
  dsp::Rng rng(21);
  const phy::Bits payload = phy::random_bits(24, rng);
  LinkSimulator sq(quiet), sl(loud);
  const auto rq = sq.uplink_once(payload);
  const auto rl = sl.uplink_once(payload);
  ASSERT_TRUE(rq.uplink_decoded);
  if (rl.uplink_decoded) {
    EXPECT_GT(rq.uplink_snr_db, rl.uplink_snr_db);
  }
}


TEST(LinkSimulator, RangingEstimatesNodeDistance) {
  SystemConfig cfg = default_system();
  cfg.structure = channel::structures::s3_common_wall();
  cfg.channel.distance = 1.2;
  cfg.channel.noise_sigma = 1e-4;
  cfg.transmitter.tx_voltage = 150.0;
  LinkSimulator sim(cfg);
  const auto est = sim.estimate_node_distance();
  ASSERT_TRUE(est.valid);
  // Decimation quantizes the arrival to ~31 us (~3 cm at Cs/2); allow a
  // generous envelope for detector latency.
  EXPECT_NEAR(est.distance, 1.2, 0.15);
}

TEST(LinkSimulator, RangingScalesWithDistance) {
  SystemConfig cfg = default_system();
  cfg.structure = channel::structures::s3_common_wall();
  cfg.channel.noise_sigma = 1e-4;
  cfg.transmitter.tx_voltage = 200.0;
  cfg.channel.distance = 0.5;
  LinkSimulator near_sim(cfg);
  cfg.channel.distance = 2.0;
  LinkSimulator far_sim(cfg);
  const auto near_est = near_sim.estimate_node_distance();
  const auto far_est = far_sim.estimate_node_distance();
  ASSERT_TRUE(near_est.valid);
  ASSERT_TRUE(far_est.valid);
  EXPECT_GT(far_est.distance, near_est.distance + 1.0);
}

TEST(InventorySession, SnrDecaysWithDistance) {
  InventorySession::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  InventorySession session(cfg);
  EXPECT_GT(session.snr_for_distance(0.5), session.snr_for_distance(2.0));
  EXPECT_NEAR(session.snr_for_distance(0.0), cfg.snr_at_contact_db, 1e-9);
}

TEST(InventorySession, ReachabilityFollowsLinkBudget) {
  InventorySession::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  cfg.tx_voltage = 50.0;  // anchor: 1.34 m
  InventorySession session(cfg);
  EXPECT_TRUE(session.node_reachable(1.0));
  EXPECT_FALSE(session.node_reachable(2.0));
}

TEST(InventorySession, CollectsFromDeployedNodes) {
  InventorySession::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  cfg.tx_voltage = 250.0;
  cfg.inventory.q = 2;
  cfg.inventory.max_rounds = 12;
  InventorySession session(cfg);
  for (int i = 0; i < 4; ++i) {
    DeployedNode n;
    n.node_id = static_cast<std::uint16_t>(i + 1);
    n.distance = 0.4 + 0.4 * i;
    n.environment.temperature_c = 25.0 + i;
    session.deploy(n);
  }
  const auto result = session.collect(
      {static_cast<std::uint8_t>(node::SensorId::kTemperature)});
  EXPECT_EQ(result.inventoried_ids.size(), 4u);
  EXPECT_EQ(result.readings.size(), 4u);
  for (const auto& r : result.readings) {
    EXPECT_NEAR(r.value, 25.0 + (r.node_id - 1), 0.6);
  }
}

TEST(InventorySession, UnreachableNodesSitOut) {
  InventorySession::Config cfg;
  cfg.structure = channel::structures::s2_column();
  cfg.tx_voltage = 50.0;  // 0.56 m anchor
  InventorySession session(cfg);
  DeployedNode near;
  near.node_id = 1;
  near.distance = 0.3;
  DeployedNode far;
  far.node_id = 2;
  far.distance = 2.0;
  session.deploy(near);
  session.deploy(far);
  const auto result = session.collect({});
  ASSERT_EQ(result.inventoried_ids.size(), 1u);
  EXPECT_EQ(result.inventoried_ids[0], 1);
}

TEST(InventorySession, EnvironmentUpdatesReachSensors) {
  InventorySession::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  cfg.tx_voltage = 250.0;
  InventorySession session(cfg);
  DeployedNode n;
  n.node_id = 7;
  n.distance = 0.5;
  session.deploy(n);
  node::ConcreteEnvironment env;
  env.relative_humidity = 91.0;
  session.set_environment(7, env);
  const auto result = session.collect(
      {static_cast<std::uint8_t>(node::SensorId::kHumidity)});
  ASSERT_EQ(result.readings.size(), 1u);
  EXPECT_NEAR(result.readings[0].value, 91.0, 2.5);
}

}  // namespace
}  // namespace ecocap::core
