// Self-healing fleet runtime tests: crash-safe checkpoint durability
// (atomic_write_file fsync path), SpscRing overflow policies and close()
// poisoning, bit-exact StreamingReader checkpoint/resume, and the
// DaemonSupervisor's chaos acceptance — scripted crashes, a stall, and a
// slow-consumer throttle, after which the recovered fleet's telemetry is
// byte-identical to a crash-free run. A seeded probabilistic soak rides the
// `slow` label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/spsc_ring.hpp"
#include "dsp/serialize.hpp"
#include "fleet/telemetry_store.hpp"
#include "runtime/daemon_supervisor.hpp"
#include "stream/streaming_reader.hpp"

namespace {

using ecocap::core::Overflow;
using ecocap::core::SpscRing;

// ---------------------------------------------------------------------------
// dsp::ser::atomic_write_file — durability and failure paths
// ---------------------------------------------------------------------------

TEST(AtomicWriteFile, WritesDurablyAndCleansUpTemp) {
  const std::string path = ::testing::TempDir() + "ecocap_awf_ok.txt";
  ASSERT_TRUE(ecocap::dsp::ser::atomic_write_file(path, "first"));
  ASSERT_TRUE(ecocap::dsp::ser::atomic_write_file(path, "second"));
  const auto back = ecocap::dsp::ser::read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "second");
  EXPECT_FALSE(ecocap::dsp::ser::read_file(path + ".tmp").has_value())
      << "temp file must not survive a successful replace";
  std::remove(path.c_str());
}

TEST(AtomicWriteFile, FailsCleanlyWhenParentIsMissing) {
  // The fopen of the temp file fails: the call must report failure instead
  // of pretending the checkpoint is durable.
  const std::string path =
      ::testing::TempDir() + "ecocap_no_such_dir/deeper/ckpt.txt";
  EXPECT_FALSE(ecocap::dsp::ser::atomic_write_file(path, "payload"));
}

TEST(AtomicWriteFile, FailsCleanlyWhenTargetIsADirectory) {
  // rename() over a non-empty directory fails after the temp file was
  // written and fsynced: the temp must be cleaned up and false returned.
  const std::string dir = ::testing::TempDir() + "ecocap_awf_dir";
  ASSERT_EQ(::system(("mkdir -p '" + dir + "/occupant'").c_str()), 0);
  EXPECT_FALSE(ecocap::dsp::ser::atomic_write_file(dir, "payload"));
  EXPECT_FALSE(ecocap::dsp::ser::read_file(dir + ".tmp").has_value())
      << "failed replace must not leak its temp file";
  ASSERT_EQ(::system(("rm -rf '" + dir + "'").c_str()), 0);
}

// ---------------------------------------------------------------------------
// core::SpscRing — overflow policies and close() poisoning
// ---------------------------------------------------------------------------

TEST(SpscRingOverflow, DropOldestEvictsAndAccountsExactly) {
  SpscRing<int> ring(4);
  std::size_t dropped = 0;
  for (int i = 0; i < 10; ++i) {
    dropped += ring.push(int(i), Overflow::kDropOldest);
  }
  EXPECT_EQ(dropped, 6u);  // capacity 4, 10 pushes
  EXPECT_EQ(ring.size(), 4u);
  // The survivors are the *newest* four, still in FIFO order.
  int out = -1;
  for (int expect = 6; expect < 10; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingOverflow, DropNewestDiscardsThePushAndAccountsExactly) {
  SpscRing<int> ring(2);
  std::size_t dropped = 0;
  for (int i = 0; i < 5; ++i) {
    dropped += ring.push(int(i), Overflow::kDropNewest);
  }
  EXPECT_EQ(dropped, 3u);
  int out = -1;
  for (int expect = 0; expect < 2; ++expect) {  // the oldest two survive
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(SpscRingOverflow, BlockPolicyNeverDrops) {
  SpscRing<int> ring(2);
  EXPECT_EQ(ring.push(1, Overflow::kBlock), 0u);
  EXPECT_EQ(ring.push(2, Overflow::kBlock), 0u);
  EXPECT_EQ(ring.push(3, Overflow::kBlock), 0u);  // full: refused, not lost
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRingClose, PoisonedRingRefusesPushesAndDrains) {
  SpscRing<int> ring(4);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_EQ(ring.push(4, Overflow::kDropOldest), 1u)
      << "a drop-policy push on a closed ring loses the element, accounted";
  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));  // remaining elements drain
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingClose, WakesABlockedProducer) {
  // The shutdown-deadlock contract: a producer spinning on a full ring must
  // exit once the consumer side closes it.
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  std::atomic<bool> exited{false};
  std::thread producer([&] {
    while (!ring.try_push(99)) {
      if (ring.closed()) break;
      std::this_thread::yield();
    }
    exited.store(true);
  });
  ring.close();
  producer.join();
  EXPECT_TRUE(exited.load());
}

// Concurrent drop-oldest stress: producer evicts while the consumer pops.
// The CAS-guarded head makes both sides agree on who consumed each element;
// under TSan this is the data-race proof for the eviction path.
TEST(SpscRingOverflow, ConcurrentDropOldestNeverTearsOrDoubleDelivers) {
  constexpr std::uint64_t kItems = 100000;
  SpscRing<std::uint64_t> ring(8);
  std::atomic<std::uint64_t> dropped{0};
  std::thread producer([&] {
    std::uint64_t local_dropped = 0;
    for (std::uint64_t i = 0; i < kItems; ++i) {
      local_dropped += ring.push(std::uint64_t(i), Overflow::kDropOldest);
    }
    dropped.store(local_dropped);
    ring.close();
  });
  std::uint64_t popped = 0, last = 0;
  bool first = true, ordered = true;
  std::uint64_t got = 0;
  for (;;) {
    if (ring.try_pop(got)) {
      ++popped;
      if (!first && got <= last) ordered = false;
      last = got;
      first = false;
    } else if (ring.closed() && ring.empty()) {
      break;
    }
  }
  producer.join();
  while (ring.try_pop(got)) {  // final drain after close
    ++popped;
    if (got <= last) ordered = false;
    last = got;
  }
  EXPECT_TRUE(ordered) << "popped values must stay strictly increasing";
  EXPECT_EQ(popped + dropped.load(), kItems)
      << "every element is either delivered or accounted as dropped";
}

// ---------------------------------------------------------------------------
// StreamingReader checkpoint/resume — bit-exact recovery
// ---------------------------------------------------------------------------

ecocap::reader::StreamingReaderConfig fast_daemon_config(bool threaded) {
  ecocap::reader::StreamingReaderConfig config;
  config.stream.system = ecocap::core::default_system();
  config.stream.block_size = threaded ? 1024 : 256;
  config.stream.threaded = threaded;
  config.poll_interval_s = 0.05;
  config.warmup_s = 0.5;
  return config;
}

std::string node_bytes(const ecocap::fleet::TelemetryStore& store,
                       std::size_t node) {
  ecocap::dsp::ser::Writer w("test-store-dump v1");
  store.save_node(node, w);
  return w.payload();
}

TEST(StreamingReaderCheckpoint, ResumeReplaysByteIdentically) {
  const auto config = fast_daemon_config(false);

  ecocap::reader::StreamingReader uninterrupted(config);
  uninterrupted.run_polls(8);

  ecocap::reader::StreamingReader crashing(config);
  crashing.run_polls(4);
  const std::string ckpt = crashing.checkpoint();

  ecocap::reader::StreamingReader resumed(config);
  resumed.resume(ckpt);
  EXPECT_EQ(resumed.polls_done(), 4u);
  resumed.run_polls(4);

  // The strongest equality there is: the complete serialized daemon state
  // (pipeline carried state, RNG streams, firmware, supervisor, cumulative
  // stats, telemetry node) is byte-identical.
  EXPECT_EQ(uninterrupted.checkpoint(), resumed.checkpoint());
  EXPECT_EQ(node_bytes(uninterrupted.telemetry(), 0),
            node_bytes(resumed.telemetry(), 0));
  EXPECT_GT(uninterrupted.stats().delivered, 0u)
      << "scenario must actually deliver readings for the check to bite";

  // Quiescent decode workspace: every checkout was returned (no pooled
  // buffer leaked across the crash/resume boundary).
  const auto& ws = resumed.pipeline().rx_workspace_stats();
  EXPECT_EQ(ws.checkouts, ws.returns);
}

TEST(StreamingReaderCheckpoint, ResumeCoversThreadedPipelines) {
  const auto config = fast_daemon_config(true);

  ecocap::reader::StreamingReader uninterrupted(config);
  uninterrupted.run_polls(4);

  ecocap::reader::StreamingReader crashing(config);
  crashing.run_polls(2);
  const std::string ckpt = crashing.checkpoint();

  ecocap::reader::StreamingReader resumed(config);
  resumed.resume(ckpt);
  resumed.run_polls(2);

  EXPECT_EQ(uninterrupted.checkpoint(), resumed.checkpoint());
}

TEST(StreamingReaderCheckpoint, ResumeCarriesPendingFaultEvents) {
  auto config = fast_daemon_config(false);
  ecocap::reader::StreamFaultEvent event;
  event.at_s = 0.65;  // fires after the checkpoint poll below
  event.plan = ecocap::fault::FaultPlan::at_intensity(0.5);
  config.fault_events.push_back(event);

  ecocap::reader::StreamingReader uninterrupted(config);
  uninterrupted.run_polls(8);
  ASSERT_EQ(uninterrupted.stats().fault_events_applied, 1u);

  ecocap::reader::StreamingReader crashing(config);
  crashing.run_polls(2);
  const std::string ckpt = crashing.checkpoint();

  ecocap::reader::StreamingReader resumed(config);
  resumed.resume(ckpt);
  resumed.run_polls(6);

  EXPECT_EQ(resumed.stats().fault_events_applied, 1u)
      << "the fault-plan cursor must survive the restart";
  EXPECT_EQ(uninterrupted.checkpoint(), resumed.checkpoint());
}

TEST(StreamingReaderCheckpoint, RejectsFingerprintMismatch) {
  const auto config = fast_daemon_config(false);
  ecocap::reader::StreamingReader a(config);
  a.run_polls(1);
  const std::string ckpt = a.checkpoint();

  auto other = config;
  other.stream.system.seed ^= 1;
  ecocap::reader::StreamingReader b(other);
  EXPECT_THROW(b.resume(ckpt), std::runtime_error);

  auto slower = config;
  slower.poll_interval_s *= 2.0;
  ecocap::reader::StreamingReader c(slower);
  EXPECT_THROW(c.resume(ckpt), std::runtime_error);

  ecocap::reader::StreamingReader d(config);
  EXPECT_THROW(d.resume("garbage"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// fleet::TelemetryStore — writer ownership + node round trip
// ---------------------------------------------------------------------------

TEST(TelemetryStoreOwnership, SingleWriterHandoff) {
  ecocap::fleet::TelemetryStore store({.nodes = 2});
  EXPECT_FALSE(store.writer_of(0).has_value());
  EXPECT_TRUE(store.claim_writer(0, 7));
  EXPECT_TRUE(store.claim_writer(0, 7)) << "re-claim by the owner succeeds";
  EXPECT_FALSE(store.claim_writer(0, 8)) << "second writer must be refused";
  EXPECT_EQ(store.writer_of(0).value_or(0), 7u);
  store.release_writer(0, 8);  // non-owner release is a no-op
  EXPECT_TRUE(store.writer_of(0).has_value());
  store.release_writer(0, 7);
  EXPECT_FALSE(store.writer_of(0).has_value());
  EXPECT_TRUE(store.claim_writer(0, 8));
}

TEST(TelemetryStoreOwnership, NodeRoundTripAndReset) {
  ecocap::fleet::TelemetryStore store({.nodes = 1, .raw_capacity = 8});
  for (std::uint32_t t = 0; t < 20; ++t) {
    store.append(0, t * 30, 1.5f + static_cast<float>(t));
  }
  const std::string before = node_bytes(store, 0);

  ecocap::dsp::ser::Writer w("roundtrip v1");
  store.save_node(0, w);
  ecocap::fleet::TelemetryStore other({.nodes = 1, .raw_capacity = 8});
  ecocap::dsp::ser::Reader r(w.payload(), "roundtrip v1");
  other.load_node(0, r);
  EXPECT_EQ(node_bytes(other, 0), before);
  EXPECT_EQ(other.total_appends(), 20u);

  other.reset_node(0);
  EXPECT_FALSE(other.latest(0).has_value());
  EXPECT_EQ(other.total_appends(), 0u);

  ecocap::fleet::TelemetryStore wrong({.nodes = 1, .raw_capacity = 32});
  ecocap::dsp::ser::Reader r2(w.payload(), "roundtrip v1");
  EXPECT_THROW(wrong.load_node(0, r2), std::runtime_error);
}

// ---------------------------------------------------------------------------
// DaemonSupervisor — chaos acceptance
// ---------------------------------------------------------------------------

ecocap::runtime::RuntimeConfig fleet_config(std::size_t daemons,
                                            std::uint64_t polls) {
  ecocap::runtime::RuntimeConfig config;
  for (std::size_t i = 0; i < daemons; ++i) {
    auto d = fast_daemon_config(false);
    // Distinct universes per daemon (seed + node id), like a real fleet.
    d.stream.system.seed += 1000 * (i + 1);
    d.stream.system.capsule.firmware.node_id =
        static_cast<std::uint16_t>(42 + i);
    config.daemons.push_back(std::move(d));
  }
  config.polls_per_daemon = polls;
  config.checkpoint_every_polls = 4;
  config.event_ring_capacity = 64;
  config.heartbeat_timeout_ms = 1500.0;
  config.watchdog_interval_ms = 5.0;
  return config;
}

// The ISSUE acceptance criterion: a scripted runtime fault plan with >= 3
// daemon crashes and >= 1 stage stall; the supervisor restarts every failed
// daemon and the final TelemetryStore contents are byte-identical to a run
// with no injected faults.
TEST(DaemonSupervisor, ChaosRecoveryIsByteIdenticalToCrashFreeRun) {
  constexpr std::uint64_t kPolls = 12;

  auto golden_config = fleet_config(2, kPolls);
  ecocap::runtime::DaemonSupervisor golden(golden_config);
  const auto golden_stats = golden.run();
  ASSERT_EQ(golden_stats.daemons.size(), 2u);
  for (const auto& d : golden_stats.daemons) {
    ASSERT_EQ(d.polls_done, kPolls);
    ASSERT_GT(d.reader.delivered, 0u);
    // No *crashes* in the golden run. Restarts are not asserted zero: on an
    // oversubscribed host (TSan, busy CI) the watchdog may false-kick a
    // slow-but-healthy daemon, which is safe by design — the byte-identity
    // checks below are what must hold either way.
    EXPECT_EQ(d.crashes, 0u);
  }

  auto chaos_config = fleet_config(2, kPolls);
  using Chaos = ecocap::runtime::ChaosEvent;
  chaos_config.script = {
      // Crash before the first checkpoint (restart-from-scratch path)...
      {0, 3, Chaos::Kind::kCrash, 1},
      // ...and after one (resume-from-checkpoint path).
      {0, 7, Chaos::Kind::kCrash, 1},
      {1, 5, Chaos::Kind::kCrash, 1},
      // A hung pipeline the watchdog must reclaim.
      {1, 9, Chaos::Kind::kStall, 2},
      // A slow consumer stressing the event rings.
      {0, 2, Chaos::Kind::kThrottle, 100},
  };
  ecocap::runtime::DaemonSupervisor chaos(chaos_config);
  const auto chaos_stats = chaos.run();

  std::uint64_t crashes = 0, stalls = 0, kicks = 0, resumed = 0, scratch = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& d = chaos_stats.daemons[i];
    EXPECT_EQ(d.polls_done, kPolls) << "daemon " << i << " must finish";
    crashes += d.crashes;
    stalls += d.stalls;
    kicks += d.watchdog_kicks;
    resumed += d.resumed_from_checkpoint;
    scratch += d.restarted_from_scratch;
    EXPECT_EQ(d.restarts, d.resumed_from_checkpoint + d.restarted_from_scratch);
  }
  EXPECT_GE(crashes, 3u);
  EXPECT_GE(stalls, 1u);
  EXPECT_GE(kicks, 1u) << "the stalled daemon must be detected as hung";
  EXPECT_GE(resumed, 1u);
  EXPECT_GE(scratch, 1u);
  EXPECT_GE(chaos_stats.total_restarts(), 4u);
  EXPECT_GE(chaos_stats.throttles, 1u);

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(node_bytes(chaos.telemetry(), i),
              node_bytes(golden.telemetry(), i))
        << "node " << i
        << ": recovered telemetry must be byte-identical to the crash-free "
           "run";
    // The sim-domain reader counters replayed identically too.
    const auto& g = golden_stats.daemons[i].reader;
    const auto& c = chaos_stats.daemons[i].reader;
    EXPECT_EQ(c.polls, g.polls);
    EXPECT_EQ(c.delivered, g.delivered);
    EXPECT_EQ(c.missed, g.missed);
    EXPECT_EQ(c.frames_scheduled, g.frames_scheduled);
    EXPECT_EQ(c.brownouts, g.brownouts);
  }
}

// Backpressure acceptance: a collector paused for the whole campaign at a
// tiny ring capacity. Memory stays bounded by construction (the ring never
// exceeds its capacity) and every pushed event is either collected or
// accounted as dropped — exactly.
TEST(DaemonSupervisor, DropOldestAccountsEveryLostEventExactly) {
  constexpr std::uint64_t kPolls = 10;
  auto config = fleet_config(1, kPolls);
  config.event_ring_capacity = 2;
  config.event_policy = Overflow::kDropOldest;
  config.script = {{0, 0, ecocap::runtime::ChaosEvent::Kind::kThrottle,
                    600000}};  // paused throughout; final drain still runs

  ecocap::runtime::DaemonSupervisor supervisor(config);
  const auto stats = supervisor.run();
  const auto& d = stats.daemons[0];
  EXPECT_EQ(d.polls_done, kPolls);
  // >= not ==: a benign watchdog false kick on a slow host replays polls
  // from the last checkpoint, and replayed polls re-push their events. The
  // accounting below must balance exactly regardless.
  EXPECT_GE(d.events_pushed, kPolls);
  EXPECT_GT(d.events_dropped, 0u);
  EXPECT_EQ(d.events_pushed, stats.events_collected + d.events_dropped)
      << "exact accounting: pushed == collected + dropped";
  EXPECT_LE(stats.events_collected, 2u)
      << "a paused collector can only receive what the tiny ring retained";
  EXPECT_EQ(d.reader.events_dropped, d.events_dropped)
      << "drops surface in the (checkpointed) reader stats";
}

TEST(DaemonSupervisor, ValidatesConfig) {
  ecocap::runtime::RuntimeConfig config;
  EXPECT_THROW(ecocap::runtime::DaemonSupervisor{config},
               std::invalid_argument);
  config = fleet_config(1, 0);
  EXPECT_THROW(ecocap::runtime::DaemonSupervisor{config},
               std::invalid_argument);
  config = fleet_config(1, 1);
  config.event_ring_capacity = 0;
  EXPECT_THROW(ecocap::runtime::DaemonSupervisor{config},
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Seeded probabilistic chaos soak (slow label)
// ---------------------------------------------------------------------------

// Random crashes/stalls/throttles from the seeded runtime fault plan while
// three daemons stream. Asserts the fleet survives (every daemon finishes),
// the store's torn-read invariants hold under concurrent query load, drop
// accounting stays exact, and no decode workspace buffer leaked.
TEST(DaemonSupervisorSoak, SurvivesSeededRandomChaos) {
  constexpr std::uint64_t kPolls = 24;
  auto config = fleet_config(3, kPolls);
  config.chaos.crash_prob = 0.04;
  config.chaos.stall_prob = 0.02;
  config.chaos.stall_polls_min = 1;
  config.chaos.stall_polls_max = 1;
  config.chaos.throttle_prob = 0.05;
  config.chaos_seed = 0xec0cafe;
  config.checkpoint_dir = ::testing::TempDir();
  config.event_ring_capacity = 8;

  ecocap::runtime::DaemonSupervisor supervisor(config);

  // Concurrent query load racing the writers: every observed reading must
  // be whole (a sane t_sec and a finite value), never torn.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observed{0};
  std::atomic<bool> torn{false};
  std::thread prober([&] {
    std::vector<ecocap::fleet::TelemetryStore::Reading> out;
    std::vector<float> scratch;
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t node = 0; node < 3; ++node) {
        out.clear();
        supervisor.telemetry().range(
            node, ecocap::fleet::TelemetryStore::Tier::kRaw, 0,
            std::numeric_limits<std::uint32_t>::max(), out);
        for (const auto& r : out) {
          ++observed;
          if (!std::isfinite(r.value) || r.t_sec > 86400u) torn.store(true);
        }
      }
      (void)supervisor.telemetry().fleet_percentiles(scratch);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const auto stats = supervisor.run();
  stop.store(true, std::memory_order_release);
  prober.join();

  EXPECT_FALSE(torn.load()) << "torn or garbage reading observed";
  EXPECT_GT(observed.load(), 0u);
  std::uint64_t pushed = 0, dropped = 0;
  for (std::size_t i = 0; i < stats.daemons.size(); ++i) {
    const auto& d = stats.daemons[i];
    EXPECT_EQ(d.polls_done, kPolls) << "daemon " << i << " did not finish";
    EXPECT_GT(d.reader.delivered, 0u);
    pushed += d.events_pushed;
    dropped += d.events_dropped;
  }
  EXPECT_EQ(pushed, stats.events_collected + dropped);
  // The plan is hot enough that *some* chaos fired across 3 x 24 polls
  // (3 draws/poll at p >= 0.02 each; the seed makes this deterministic).
  std::uint64_t chaos_seen = 0;
  for (const auto& d : stats.daemons) {
    chaos_seen += d.crashes + d.stalls;
  }
  EXPECT_GT(chaos_seen + stats.throttles, 0u);
}

}  // namespace
