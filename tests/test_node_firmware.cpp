#include <gtest/gtest.h>

#include "node/firmware.hpp"
#include "phy/pie.hpp"

namespace ecocap::node {
namespace {

FirmwareConfig make_config(std::uint16_t id) {
  FirmwareConfig cfg;
  cfg.node_id = id;
  return cfg;
}

TEST(Firmware, OffNodeStaysSilent) {
  Firmware fw(make_config(1), 1);
  ConcreteEnvironment env;
  const auto reply =
      fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(fw.state(), McuState::kOff);
}

TEST(Firmware, QueryWithZeroSlotsAlwaysReplies) {
  Firmware fw(make_config(1), 1);
  fw.power_on();
  ConcreteEnvironment env;
  const auto reply =
      fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  ASSERT_TRUE(reply.has_value());
  const auto rn16 = phy::parse_rn16_response(reply->payload);
  ASSERT_TRUE(rn16.has_value());
  EXPECT_EQ(rn16->rn16, fw.current_rn16());
  EXPECT_EQ(fw.state(), McuState::kReplied);
}

TEST(Firmware, SlottedArbitrationAdvancesWithQueryRep) {
  Firmware fw(make_config(7), 99);
  fw.power_on();
  ConcreteEnvironment env;
  // With q=4 (16 slots) a reply might not be immediate; drive QueryReps
  // until the node answers — must happen within 16 slots.
  auto reply = fw.handle_command(phy::Command{phy::QueryCommand{4}}, env);
  int reps = 0;
  while (!reply.has_value() && reps < 16) {
    reply = fw.handle_command(phy::Command{phy::QueryRepCommand{}}, env);
    ++reps;
  }
  EXPECT_TRUE(reply.has_value());
  EXPECT_EQ(fw.state(), McuState::kReplied);
}

TEST(Firmware, AckWithCorrectRn16YieldsId) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  auto rn = fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  ASSERT_TRUE(rn.has_value());
  const auto id_frame = fw.handle_command(
      phy::Command{phy::AckCommand{fw.current_rn16()}}, env);
  ASSERT_TRUE(id_frame.has_value());
  const auto id = phy::parse_id_response(id_frame->payload);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->node_id, 0x42);
  EXPECT_EQ(fw.state(), McuState::kAcked);
}

TEST(Firmware, AckWithWrongRn16Ignored) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  (void)fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  const auto bad = fw.handle_command(
      phy::Command{phy::AckCommand{static_cast<std::uint16_t>(
          fw.current_rn16() ^ 0x1)}},
      env);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(fw.state(), McuState::kReplied);  // still waiting
}

TEST(Firmware, ReadReturnsSensorValue) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  env.temperature_c = 33.25;
  (void)fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  (void)fw.handle_command(phy::Command{phy::AckCommand{fw.current_rn16()}},
                          env);
  const auto data_frame = fw.handle_command(
      phy::Command{phy::ReadCommand{
          fw.current_rn16(),
          static_cast<std::uint8_t>(SensorId::kTemperature)}},
      env);
  ASSERT_TRUE(data_frame.has_value());
  const auto data = phy::parse_data_response(data_frame->payload);
  ASSERT_TRUE(data.has_value());
  EXPECT_NEAR(phy::from_milli(data->milli_value), 33.25, 0.5);
}

TEST(Firmware, ReadUnknownSensorSilent) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  (void)fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  (void)fw.handle_command(phy::Command{phy::AckCommand{fw.current_rn16()}},
                          env);
  const auto reply = fw.handle_command(
      phy::Command{phy::ReadCommand{fw.current_rn16(), 99}}, env);
  EXPECT_FALSE(reply.has_value());
}

TEST(Firmware, ReadBeforeAckRejected) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  (void)fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  const auto reply = fw.handle_command(
      phy::Command{phy::ReadCommand{
          fw.current_rn16(),
          static_cast<std::uint8_t>(SensorId::kTemperature)}},
      env);
  EXPECT_FALSE(reply.has_value());
}

TEST(Firmware, SetBlfUpdatesConfig) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  (void)fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  (void)fw.handle_command(phy::Command{phy::AckCommand{fw.current_rn16()}},
                          env);
  (void)fw.handle_command(
      phy::Command{phy::SetBlfCommand{fw.current_rn16(), 80}}, env);
  EXPECT_DOUBLE_EQ(fw.config().blf, 8000.0);
}

TEST(Firmware, PowerOffLosesState) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  (void)fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  fw.power_off();
  EXPECT_EQ(fw.state(), McuState::kOff);
  EXPECT_EQ(fw.current_rn16(), 0);
}

TEST(Firmware, ProcessDownlinkParsesPieWaveform) {
  // End-to-end downlink path: command bits -> PIE baseband -> binarized
  // levels -> firmware (edge timers) -> RN16 frame.
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;

  const double fs = 1.0e6;
  const phy::Bits cmd_bits =
      phy::encode_command(phy::Command{phy::QueryCommand{0}});
  const dsp::Signal wave = phy::pie_encode(cmd_bits, phy::PieParams{}, fs);
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;

  const auto frames = fw.process_downlink(levels, fs, env);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload.size(), phy::rn16_response_bits());
}

TEST(Firmware, ProcessDownlinkMultipleCommands) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  const double fs = 1.0e6;

  // Query, then (with the learned RN16 unknowable in advance) a bad ACK:
  // exactly one reply frame must come back.
  dsp::Signal wave = phy::pie_encode(
      phy::encode_command(phy::Command{phy::QueryCommand{0}}),
      phy::PieParams{}, fs);
  const dsp::Signal second = phy::pie_encode(
      phy::encode_command(phy::Command{phy::AckCommand{0xFFFF}}),
      phy::PieParams{}, fs);
  wave.insert(wave.end(), second.begin(), second.end());
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;

  const auto frames = fw.process_downlink(levels, fs, env);
  // Either only the RN16 reply (bad ACK ignored) or — with 1/65536 luck —
  // two frames; never zero.
  EXPECT_GE(frames.size(), 1u);
}

TEST(Firmware, CorruptedCommandIgnored) {
  Firmware fw(make_config(0x42), 1);
  fw.power_on();
  ConcreteEnvironment env;
  const double fs = 1.0e6;
  phy::Bits cmd_bits =
      phy::encode_command(phy::Command{phy::QueryCommand{0}});
  cmd_bits[5] ^= 1;  // break the CRC
  const dsp::Signal wave = phy::pie_encode(cmd_bits, phy::PieParams{}, fs);
  std::vector<bool> levels(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) levels[i] = wave[i] > 0.5;
  EXPECT_TRUE(fw.process_downlink(levels, fs, env).empty());
}

TEST(Firmware, SlotDistributionRoughlyUniform) {
  // Across many Query(q=2) rounds the immediate-reply rate should be ~1/4.
  ConcreteEnvironment env;
  int immediate = 0;
  const int trials = 2000;
  Firmware fw(make_config(3), 12345);
  fw.power_on();
  for (int i = 0; i < trials; ++i) {
    const auto r = fw.handle_command(phy::Command{phy::QueryCommand{2}}, env);
    if (r.has_value()) ++immediate;
  }
  EXPECT_NEAR(static_cast<double>(immediate) / trials, 0.25, 0.04);
}


TEST(Firmware, SelectFiltersByIdMask) {
  Firmware a(make_config(0x0F01), 1), b(make_config(0x0E02), 2);
  a.power_on();
  b.power_on();
  ConcreteEnvironment env;
  // Select pattern 0x0F00 / mask 0xFF00: only node A participates.
  const phy::Command sel{phy::SelectCommand{0x0F00, 0xFF00}};
  (void)a.handle_command(sel, env);
  (void)b.handle_command(sel, env);
  EXPECT_TRUE(a.selected());
  EXPECT_FALSE(b.selected());
  const auto ra = a.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  const auto rb = b.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  EXPECT_TRUE(ra.has_value());
  EXPECT_FALSE(rb.has_value());
}

TEST(Firmware, SelectMaskZeroReselectsAll) {
  Firmware fw(make_config(0x1234), 3);
  fw.power_on();
  ConcreteEnvironment env;
  (void)fw.handle_command(phy::Command{phy::SelectCommand{0xFFFF, 0xFFFF}},
                          env);
  EXPECT_FALSE(fw.selected());
  (void)fw.handle_command(phy::Command{phy::SelectCommand{0, 0}}, env);
  EXPECT_TRUE(fw.selected());
}

TEST(Firmware, SelectNeverReplies) {
  Firmware fw(make_config(0x1234), 4);
  fw.power_on();
  ConcreteEnvironment env;
  const auto r = fw.handle_command(
      phy::Command{phy::SelectCommand{0x1234, 0xFFFF}}, env);
  EXPECT_FALSE(r.has_value());
}

/// Property: for every attached default sensor, the Query->Ack->Read chain
/// returns a parseable value.
class SensorReadSweep : public ::testing::TestWithParam<SensorId> {};

TEST_P(SensorReadSweep, FullChainReturnsValue) {
  Firmware fw(make_config(9), 77);
  fw.power_on();
  ConcreteEnvironment env;
  env.temperature_c = 30.0;
  env.relative_humidity = 85.0;
  env.strain_x = 1.0e-4;
  env.strain_y = 2.0e-4;
  env.acceleration = 0.01;
  env.stress_mpa = -40.0;
  (void)fw.handle_command(phy::Command{phy::QueryCommand{0}}, env);
  (void)fw.handle_command(phy::Command{phy::AckCommand{fw.current_rn16()}},
                          env);
  const auto frame = fw.handle_command(
      phy::Command{phy::ReadCommand{
          fw.current_rn16(), static_cast<std::uint8_t>(GetParam())}},
      env);
  ASSERT_TRUE(frame.has_value());
  const auto data = phy::parse_data_response(frame->payload);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->sensor_id, static_cast<std::uint8_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllSensors, SensorReadSweep,
                         ::testing::Values(SensorId::kTemperature,
                                           SensorId::kHumidity,
                                           SensorId::kStrainX,
                                           SensorId::kStrainY,
                                           SensorId::kAcceleration,
                                           SensorId::kStress));

}  // namespace
}  // namespace ecocap::node
