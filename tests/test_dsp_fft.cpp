#include <gtest/gtest.h>

#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/signal_ops.hpp"

namespace ecocap::dsp {
namespace {

constexpr Real kFs = 1.0e6;

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, ForwardInverseRoundTrip) {
  ComplexSignal x(256);
  Rng rng(5);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  ComplexSignal y = x;
  fft_inplace(y, false);
  fft_inplace(y, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(Fft, NonPow2Throws) {
  ComplexSignal x(100);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
}

TEST(Fft, SpectrumPeakAtToneFrequency) {
  const Signal x = tone(kFs, 230.0e3, 16384, 1.0);
  const Signal mag = magnitude_spectrum(x);
  const std::size_t n = next_pow2(x.size());
  const std::size_t k = peak_bin_in_band(mag, n, kFs, 1.0e3, 499.0e3);
  EXPECT_NEAR(bin_frequency(k, n, kFs), 230.0e3, kFs / n * 1.5);
}

TEST(Fft, ToneEstimatorSubBinAccuracy) {
  // A frequency that does NOT fall on a bin center.
  const Real f0 = 231.37e3;
  const Signal x = tone(kFs, f0, 50000, 1.0);
  const Real est = estimate_tone_frequency(x, kFs, 200.0e3, 260.0e3);
  EXPECT_NEAR(est, f0, 30.0);  // parabolic interpolation: tens of Hz
}

TEST(Fft, BandPowerCapturesTone) {
  Signal x = tone(kFs, 100.0e3, 32768, 2.0);  // power = 2.0
  const Real in_band = band_power(x, kFs, 90.0e3, 110.0e3);
  const Real out_band = band_power(x, kFs, 300.0e3, 400.0e3);
  EXPECT_NEAR(in_band, 2.0, 0.1);
  EXPECT_LT(out_band, 1e-3);
}

TEST(Goertzel, MatchesBandPowerForTone) {
  const Signal x = tone(kFs, 50.0e3, 10000, 1.0);
  const Real p = goertzel_power(x, kFs, 50.0e3);
  const Real p_off = goertzel_power(x, kFs, 170.0e3);
  EXPECT_GT(p, 100.0 * p_off);
}

TEST(Goertzel, StreamingBlocks) {
  Goertzel g(kFs, 50.0e3, 1000);
  const Signal x = tone(kFs, 50.0e3, 3000, 1.0);
  int completed = 0;
  for (Real v : x) {
    if (g.push(v)) ++completed;
  }
  EXPECT_EQ(completed, 3);
  EXPECT_GT(g.power(), 0.0);
}

TEST(Correlate, FindsEmbeddedTemplate) {
  Rng rng(9);
  Signal x(5000);
  for (auto& v : x) v = rng.gaussian(0.1);
  const Signal h = tone(kFs, 25.0e3, 400, 1.0);
  const std::size_t true_pos = 3120;
  for (std::size_t i = 0; i < h.size(); ++i) x[true_pos + i] += h[i];
  EXPECT_EQ(best_alignment(x, h), true_pos);
}

TEST(Correlate, CoefficientBounds) {
  const Signal a = tone(kFs, 10.0e3, 1000, 1.0);
  Signal b = a;
  EXPECT_NEAR(correlation_coefficient(a, b), 1.0, 1e-12);
  for (auto& v : b) v = -v;
  EXPECT_NEAR(correlation_coefficient(a, b), -1.0, 1e-12);
  const Signal zeros(1000, 0.0);
  EXPECT_EQ(correlation_coefficient(a, zeros), 0.0);
}

TEST(Correlate, MixDownShiftsToneToDc) {
  const Signal x = tone(kFs, 230.0e3, 20000, 1.0);
  const ComplexSignal z = mix_down(x, kFs, 230.0e3);
  // Mean of the mixed signal should have magnitude ~0.5 (tone amplitude/2).
  Complex mean(0.0, 0.0);
  for (const auto& v : z) mean += v;
  mean /= static_cast<Real>(z.size());
  EXPECT_NEAR(std::abs(mean), 0.5, 0.01);
}

TEST(Oscillator, PhaseContinuousFrequencyHop) {
  Oscillator osc(kFs, 230.0e3);
  Signal x(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i == 1000) osc.set_frequency(180.0e3);
    x[i] = osc.next();
  }
  // No sample-to-sample jump larger than the max slope of a sine.
  const Real max_step = kTwoPi * 230.0e3 / kFs * 1.05;
  for (std::size_t i = 1; i < x.size(); ++i) {
    EXPECT_LE(std::abs(x[i] - x[i - 1]), max_step);
  }
}

TEST(Oscillator, ChirpSweepsBand) {
  const Signal x = chirp(kFs, 50.0e3, 150.0e3, 65536, 1.0);
  // Most of the 0.5 total tone power lies inside the swept band.
  EXPECT_GT(band_power(x, kFs, 60.0e3, 140.0e3), 0.3);
  EXPECT_LT(band_power(x, kFs, 300.0e3, 450.0e3), 0.02);
}

/// Property sweep: the tone estimator is accurate across the carrier band.
class ToneEstimatorSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToneEstimatorSweep, EstimatesWithinTensOfHz) {
  const Real f0 = GetParam();
  const Signal x = tone(kFs, f0, 65536, 1.0);
  EXPECT_NEAR(estimate_tone_frequency(x, kFs, 100.0e3, 400.0e3), f0, 40.0);
}

INSTANTIATE_TEST_SUITE_P(CarrierBand, ToneEstimatorSweep,
                         ::testing::Values(180.0e3, 210.123e3, 230.0e3,
                                           251.77e3, 299.9e3));

}  // namespace
}  // namespace ecocap::dsp
