// Golden-vector regression suite: pins fixed-seed slices of the five tier-1
// figure harnesses (Fig. 15 BER, Fig. 16 SNR-vs-bitrate, Fig. 17
// throughput, Table 2 health levels, TDMA ablation) against checked-in
// vectors in tests/golden/. Each vector records an FNV-1a hash over the bit
// patterns of the computed series plus a few key scalars, so ANY
// bit-level drift in the fault-free pipeline fails loudly here before it
// shows up as a mysterious BENCH_*.json diff in CI.
//
// Regenerating after an intentional change:
//   ./test_golden_vectors --regen        # rewrites tests/golden/*.json
// then commit the updated files with the change that caused them.
// The vectors are generated with the library's thread-count-independent
// Monte-Carlo engines, so they hold at any ECOCAP_THREADS.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/pab.hpp"
#include "channel/snr_models.hpp"
#include "core/ber_harness.hpp"
#include "core/trial_runner.hpp"
#include "reader/inventory.hpp"
#include "shm/health.hpp"
#include "wave/material.hpp"

#include "golden_util.hpp"

#ifndef ECOCAP_GOLDEN_DIR
#error "ECOCAP_GOLDEN_DIR must point at tests/golden"
#endif

namespace ecocap {
namespace {

/// Thin wrapper binding the shared golden plumbing (tests/golden_util.hpp)
/// to this suite's vector directory.
void check_golden(const std::string& name, const std::vector<double>& series,
                  const std::map<std::string, double>& scalars) {
  golden::check_golden(ECOCAP_GOLDEN_DIR, name, series, scalars);
}

// --- the five tier-1 slices -------------------------------------------------

TEST(GoldenVectors, Fig15BerVsSnr) {
  // One mid-curve point per decoder with the bench's exact seed formula
  // (42 + 10*snr at snr = 6 dB, 100k bits).
  core::BerConfig cfg;
  cfg.snr_db = 6.0;
  cfg.total_bits = 100000;
  cfg.seed = 42 + 60;
  cfg.decoder = core::UplinkDecoder::kMlFm0;
  const auto ml = core::fm0_ber_monte_carlo(cfg);
  cfg.decoder = core::UplinkDecoder::kHardDecision;
  const auto hard = core::fm0_ber_monte_carlo(cfg);
  check_golden("fig15_ber_vs_snr",
               {ml.ber(), hard.ber(), static_cast<double>(ml.bits),
                static_cast<double>(hard.bits)},
               {{"ml_ber_6db", ml.ber()}, {"hard_ber_6db", hard.ber()}});
}

TEST(GoldenVectors, Fig16SnrVsBitrate) {
  const auto eco =
      channel::UplinkSnrModel::ecocapsule(wave::materials::normal_concrete());
  const auto pab = baseline::PabSystem().snr_model();
  const auto u2b = baseline::U2bSystem().snr_model();
  std::vector<double> series;
  for (const double kbps : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 13.0,
                            14.0, 15.0}) {
    series.push_back(eco.snr_db(kbps * 1000.0));
    series.push_back(pab.snr_db(kbps * 1000.0));
    series.push_back(u2b.snr_db(kbps * 1000.0));
  }
  check_golden("fig16_snr_vs_bitrate", series,
               {{"eco_snr_at_1kbps", eco.snr_db(1000.0)},
                {"eco_snr_at_13kbps", eco.snr_db(13000.0)}});
}

TEST(GoldenVectors, Fig17Throughput) {
  std::vector<double> series;
  std::map<std::string, double> scalars;
  for (const auto& m : wave::materials::table1_concretes()) {
    const auto best =
        channel::max_throughput(channel::UplinkSnrModel::ecocapsule(m));
    series.push_back(best.throughput);
    series.push_back(best.best_bitrate);
    scalars["throughput_" + m.name] = best.throughput;
  }
  check_golden("fig17_throughput", series, scalars);
}

TEST(GoldenVectors, Table2HealthLevels) {
  std::vector<double> series;
  const shm::Region regions[] = {
      shm::Region::kUnitedStates, shm::Region::kHongKong,
      shm::Region::kBangkok, shm::Region::kManila};
  for (const auto r : regions) {
    for (const double t : shm::pao_thresholds(r)) series.push_back(t);
  }
  for (const double pao : {4.0, 3.0, 2.0, 1.2, 0.7, 0.4}) {
    series.push_back(
        static_cast<double>(shm::grade_pao(pao, shm::Region::kHongKong)));
  }
  check_golden(
      "table2_health_levels", series,
      {{"hk_grade_at_0p7",
        static_cast<double>(shm::grade_pao(0.7, shm::Region::kHongKong))}});
}

TEST(GoldenVectors, AblationTdma) {
  // One representative (10 nodes, q = 3) cell of the ablation sweep on the
  // parallel trial engine (block decomposition fixed, so the totals are
  // identical at any thread count).
  struct Acc {
    long slots = 0;
    long collisions = 0;
    long inventoried = 0;
  };
  const core::TrialRunner runner(core::ThreadPool::shared(),
                                 /*block_size=*/2);
  const Acc acc = runner.run<Acc>(
      10, /*base_seed=*/0x7d3a,
      [](std::size_t, dsp::Rng& rng, Acc& a) {
        std::vector<std::unique_ptr<node::Firmware>> fw;
        std::vector<reader::InventoriedNode> nodes;
        for (int i = 0; i < 10; ++i) {
          node::FirmwareConfig fc;
          fc.node_id = static_cast<std::uint16_t>(i + 1);
          fw.push_back(std::make_unique<node::Firmware>(fc, rng.engine()()));
          fw.back()->power_on();
          reader::InventoriedNode in;
          in.firmware = fw.back().get();
          in.snr_db = 25.0;
          nodes.push_back(in);
        }
        reader::InventoryEngine::Config cfg;
        cfg.q = 3;
        cfg.max_rounds = 40;
        reader::InventoryEngine engine(cfg, rng.engine()());
        const auto r = engine.run(nodes);
        a.slots += r.stats.slots;
        a.collisions += r.stats.collisions;
        a.inventoried += static_cast<long>(r.inventoried_ids.size());
      },
      [](Acc& into, const Acc& from) {
        into.slots += from.slots;
        into.collisions += from.collisions;
        into.inventoried += from.inventoried;
      });
  check_golden("ablation_tdma",
               {static_cast<double>(acc.slots),
                static_cast<double>(acc.collisions),
                static_cast<double>(acc.inventoried)},
               {{"inventoried", static_cast<double>(acc.inventoried)},
                {"collisions", static_cast<double>(acc.collisions)}});
}

}  // namespace
}  // namespace ecocap

int main(int argc, char** argv) {
  return ecocap::golden::golden_test_main(argc, argv);
}
