// Golden-vector regression suite: pins fixed-seed slices of the five tier-1
// figure harnesses (Fig. 15 BER, Fig. 16 SNR-vs-bitrate, Fig. 17
// throughput, Table 2 health levels, TDMA ablation) against checked-in
// vectors in tests/golden/. Each vector records an FNV-1a hash over the bit
// patterns of the computed series plus a few key scalars, so ANY
// bit-level drift in the fault-free pipeline fails loudly here before it
// shows up as a mysterious BENCH_*.json diff in CI.
//
// Regenerating after an intentional change:
//   ./test_golden_vectors --regen        # rewrites tests/golden/*.json
// then commit the updated files with the change that caused them.
// The vectors are generated with the library's thread-count-independent
// Monte-Carlo engines, so they hold at any ECOCAP_THREADS.

#include <gtest/gtest.h>

#include <bit>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/pab.hpp"
#include "channel/snr_models.hpp"
#include "core/ber_harness.hpp"
#include "core/trial_runner.hpp"
#include "reader/inventory.hpp"
#include "shm/health.hpp"
#include "wave/material.hpp"

#ifndef ECOCAP_GOLDEN_DIR
#error "ECOCAP_GOLDEN_DIR must point at tests/golden"
#endif

namespace ecocap {
namespace {

bool g_regen = false;

// --- FNV-1a over double bit patterns ---------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_byte(std::uint64_t& h, std::uint8_t b) {
  h ^= b;
  h *= kFnvPrime;
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) fnv_byte(h, static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t hash_series(const std::vector<double>& values) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, values.size());
  for (const double v : values) fnv_u64(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

// --- golden file I/O --------------------------------------------------------
// Flat JSON: {"name": "...", "hash": "<16 hex>", "scalars": {"k":
// "hex:<16 hex> dec:<%.17g>", ...}}. The decimal is for humans; comparisons
// use the hex bit pattern only.

struct Golden {
  std::uint64_t hash = 0;
  std::map<std::string, std::uint64_t> scalars;
};

std::string golden_path(const std::string& name) {
  return std::string(ECOCAP_GOLDEN_DIR) + "/" + name + ".json";
}

bool load_golden(const std::string& name, Golden& out) {
  std::FILE* f = std::fopen(golden_path(name).c_str(), "r");
  if (!f) return false;
  std::string text;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  auto hex_after = [&text](std::size_t pos) {
    return std::strtoull(text.c_str() + pos, nullptr, 16);
  };
  const std::size_t hpos = text.find("\"hash\": \"");
  if (hpos == std::string::npos) return false;
  out.hash = hex_after(hpos + 9);
  // Scalars: every occurrence of "key": "hex:....".
  std::size_t pos = 0;
  while ((pos = text.find("\"hex:", pos)) != std::string::npos) {
    const std::size_t key_end = text.rfind('"', text.rfind(':', pos) - 1);
    const std::size_t key_start = text.rfind('"', key_end - 1) + 1;
    out.scalars[text.substr(key_start, key_end - key_start)] =
        hex_after(pos + 5);
    pos += 5;
  }
  return true;
}

void write_golden(const std::string& name, std::uint64_t hash,
                  const std::map<std::string, double>& scalars) {
  std::FILE* f = std::fopen(golden_path(name).c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << golden_path(name);
  std::fprintf(f, "{\n  \"name\": \"%s\",\n", name.c_str());
  std::fprintf(f, "  \"hash\": \"%016" PRIx64 "\",\n", hash);
  std::fprintf(f, "  \"scalars\": {");
  bool first = true;
  for (const auto& [key, value] : scalars) {
    std::fprintf(f, "%s\n    \"%s\": \"hex:%016" PRIx64 " dec:%.17g\"",
                 first ? "" : ",", key.c_str(),
                 std::bit_cast<std::uint64_t>(value), value);
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
}

/// Regenerate or verify one golden vector.
void check_golden(const std::string& name, const std::vector<double>& series,
                  const std::map<std::string, double>& scalars) {
  const std::uint64_t hash = hash_series(series);
  if (g_regen) {
    write_golden(name, hash, scalars);
    SUCCEED() << "regenerated " << golden_path(name);
    return;
  }
  Golden golden;
  ASSERT_TRUE(load_golden(name, golden))
      << "missing golden vector " << golden_path(name)
      << " — run ./test_golden_vectors --regen and commit the result";
  EXPECT_EQ(golden.hash, hash)
      << name << ": series hash drifted — the fault-free pipeline is no "
      << "longer bit-identical to the checked-in vector. If the change is "
      << "intentional, rerun with --regen and commit.";
  for (const auto& [key, value] : scalars) {
    const auto it = golden.scalars.find(key);
    ASSERT_NE(it, golden.scalars.end()) << name << ": missing scalar " << key;
    EXPECT_EQ(it->second, std::bit_cast<std::uint64_t>(value))
        << name << "." << key << ": expected "
        << std::bit_cast<double>(it->second) << ", got " << value;
  }
}

// --- the five tier-1 slices -------------------------------------------------

TEST(GoldenVectors, Fig15BerVsSnr) {
  // One mid-curve point per decoder with the bench's exact seed formula
  // (42 + 10*snr at snr = 6 dB, 100k bits).
  core::BerConfig cfg;
  cfg.snr_db = 6.0;
  cfg.total_bits = 100000;
  cfg.seed = 42 + 60;
  cfg.decoder = core::UplinkDecoder::kMlFm0;
  const auto ml = core::fm0_ber_monte_carlo(cfg);
  cfg.decoder = core::UplinkDecoder::kHardDecision;
  const auto hard = core::fm0_ber_monte_carlo(cfg);
  check_golden("fig15_ber_vs_snr",
               {ml.ber(), hard.ber(), static_cast<double>(ml.bits),
                static_cast<double>(hard.bits)},
               {{"ml_ber_6db", ml.ber()}, {"hard_ber_6db", hard.ber()}});
}

TEST(GoldenVectors, Fig16SnrVsBitrate) {
  const auto eco =
      channel::UplinkSnrModel::ecocapsule(wave::materials::normal_concrete());
  const auto pab = baseline::PabSystem().snr_model();
  const auto u2b = baseline::U2bSystem().snr_model();
  std::vector<double> series;
  for (const double kbps : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 13.0,
                            14.0, 15.0}) {
    series.push_back(eco.snr_db(kbps * 1000.0));
    series.push_back(pab.snr_db(kbps * 1000.0));
    series.push_back(u2b.snr_db(kbps * 1000.0));
  }
  check_golden("fig16_snr_vs_bitrate", series,
               {{"eco_snr_at_1kbps", eco.snr_db(1000.0)},
                {"eco_snr_at_13kbps", eco.snr_db(13000.0)}});
}

TEST(GoldenVectors, Fig17Throughput) {
  std::vector<double> series;
  std::map<std::string, double> scalars;
  for (const auto& m : wave::materials::table1_concretes()) {
    const auto best =
        channel::max_throughput(channel::UplinkSnrModel::ecocapsule(m));
    series.push_back(best.throughput);
    series.push_back(best.best_bitrate);
    scalars["throughput_" + m.name] = best.throughput;
  }
  check_golden("fig17_throughput", series, scalars);
}

TEST(GoldenVectors, Table2HealthLevels) {
  std::vector<double> series;
  const shm::Region regions[] = {
      shm::Region::kUnitedStates, shm::Region::kHongKong,
      shm::Region::kBangkok, shm::Region::kManila};
  for (const auto r : regions) {
    for (const double t : shm::pao_thresholds(r)) series.push_back(t);
  }
  for (const double pao : {4.0, 3.0, 2.0, 1.2, 0.7, 0.4}) {
    series.push_back(
        static_cast<double>(shm::grade_pao(pao, shm::Region::kHongKong)));
  }
  check_golden(
      "table2_health_levels", series,
      {{"hk_grade_at_0p7",
        static_cast<double>(shm::grade_pao(0.7, shm::Region::kHongKong))}});
}

TEST(GoldenVectors, AblationTdma) {
  // One representative (10 nodes, q = 3) cell of the ablation sweep on the
  // parallel trial engine (block decomposition fixed, so the totals are
  // identical at any thread count).
  struct Acc {
    long slots = 0;
    long collisions = 0;
    long inventoried = 0;
  };
  const core::TrialRunner runner(core::ThreadPool::shared(),
                                 /*block_size=*/2);
  const Acc acc = runner.run<Acc>(
      10, /*base_seed=*/0x7d3a,
      [](std::size_t, dsp::Rng& rng, Acc& a) {
        std::vector<std::unique_ptr<node::Firmware>> fw;
        std::vector<reader::InventoriedNode> nodes;
        for (int i = 0; i < 10; ++i) {
          node::FirmwareConfig fc;
          fc.node_id = static_cast<std::uint16_t>(i + 1);
          fw.push_back(std::make_unique<node::Firmware>(fc, rng.engine()()));
          fw.back()->power_on();
          reader::InventoriedNode in;
          in.firmware = fw.back().get();
          in.snr_db = 25.0;
          nodes.push_back(in);
        }
        reader::InventoryEngine::Config cfg;
        cfg.q = 3;
        cfg.max_rounds = 40;
        reader::InventoryEngine engine(cfg, rng.engine()());
        const auto r = engine.run(nodes);
        a.slots += r.stats.slots;
        a.collisions += r.stats.collisions;
        a.inventoried += static_cast<long>(r.inventoried_ids.size());
      },
      [](Acc& into, const Acc& from) {
        into.slots += from.slots;
        into.collisions += from.collisions;
        into.inventoried += from.inventoried;
      });
  check_golden("ablation_tdma",
               {static_cast<double>(acc.slots),
                static_cast<double>(acc.collisions),
                static_cast<double>(acc.inventoried)},
               {{"inventoried", static_cast<double>(acc.inventoried)},
                {"collisions", static_cast<double>(acc.collisions)}});
}

}  // namespace
}  // namespace ecocap

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") ecocap::g_regen = true;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
