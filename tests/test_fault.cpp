#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/link_simulator.hpp"
#include "fault/fault.hpp"
#include "node/firmware.hpp"
#include "reader/inventory.hpp"

namespace ecocap::fault {
namespace {

dsp::Signal test_tone(std::size_t n) {
  dsp::Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.05 * static_cast<Real>(i));
  }
  return x;
}

TEST(FaultPlan, IntensityZeroIsEmpty) {
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_TRUE(FaultPlan::at_intensity(0.0).empty());
  EXPECT_FALSE(FaultPlan::at_intensity(0.5).empty());
  // Intensity clamps to [0, 1].
  const FaultPlan hi = FaultPlan::at_intensity(5.0);
  EXPECT_LE(hi.channel.dropout_prob, 1.0);
  EXPECT_LE(hi.node.brownout_prob, 1.0);
}

TEST(Injector, EmptyPlanIsInert) {
  Injector inj;  // empty plan
  EXPECT_FALSE(inj.active());
  dsp::Signal x = test_tone(4096);
  const dsp::Signal before = x;
  inj.corrupt_waveform(x, 2.0e6);
  inj.clip_adc(x);
  phy::Bits bits(64, 1);
  inj.corrupt_frame_bits(bits);
  EXPECT_EQ(x, before);
  EXPECT_EQ(bits, phy::Bits(64, 1));
  EXPECT_FALSE(inj.brownout_aborts_frame());
  EXPECT_FALSE(inj.reply_lost());
  EXPECT_FALSE(inj.reply_corrupted());
  EXPECT_DOUBLE_EQ(inj.clock_drift_factor(), 1.0);
  EXPECT_DOUBLE_EQ(inj.cap_leak_amps(), 0.0);
  EXPECT_EQ(inj.counters().bursts, 0);
  EXPECT_EQ(inj.counters().replies_lost, 0);
}

TEST(Injector, SameSeedSameFaults) {
  const FaultPlan plan = FaultPlan::at_intensity(0.7);
  Injector a(plan, 42, 3), b(plan, 42, 3);
  dsp::Signal xa = test_tone(8192), xb = test_tone(8192);
  a.corrupt_waveform(xa, 2.0e6);
  b.corrupt_waveform(xb, 2.0e6);
  EXPECT_EQ(xa, xb);
  EXPECT_DOUBLE_EQ(a.clock_drift_factor(), b.clock_drift_factor());
  EXPECT_EQ(a.brownout_aborts_frame(), b.brownout_aborts_frame());
  EXPECT_EQ(a.reply_lost(), b.reply_lost());
}

TEST(Injector, DifferentTrialsDifferentFaults) {
  const FaultPlan plan = FaultPlan::at_intensity(0.7);
  Injector a(plan, 42, 0), b(plan, 42, 1);
  dsp::Signal xa = test_tone(8192), xb = test_tone(8192);
  a.corrupt_waveform(xa, 2.0e6);
  b.corrupt_waveform(xb, 2.0e6);
  EXPECT_NE(xa, xb);
}

TEST(Injector, BurstAddsEnergyInsideWindowOnly) {
  FaultPlan plan;
  plan.channel.burst_prob = 1.0;
  plan.channel.burst_sigma = 0.5;
  plan.channel.burst_fraction = 0.1;
  Injector inj(plan, 7);
  dsp::Signal x(10000, 0.0);
  inj.corrupt_waveform(x, 2.0e6);
  EXPECT_EQ(inj.counters().bursts, 1);
  const auto changed = static_cast<std::size_t>(
      std::count_if(x.begin(), x.end(), [](Real v) { return v != 0.0; }));
  // ~10% of samples carry the burst (gaussian draws are almost surely != 0).
  EXPECT_GE(changed, 900u);
  EXPECT_LE(changed, 1100u);
}

TEST(Injector, DropoutZeroesAWindow) {
  FaultPlan plan;
  plan.channel.dropout_prob = 1.0;
  plan.channel.dropout_fraction = 0.25;
  Injector inj(plan, 8);
  dsp::Signal x(8000, 1.0);
  inj.corrupt_waveform(x, 2.0e6);
  EXPECT_EQ(inj.counters().dropouts, 1);
  const auto zeros = static_cast<std::size_t>(
      std::count(x.begin(), x.end(), 0.0));
  EXPECT_EQ(zeros, 2000u);
}

TEST(Injector, SpikesFollowConfiguredRate) {
  FaultPlan plan;
  plan.channel.spike_rate_hz = 1000.0;
  plan.channel.spike_amplitude = 2.0;
  Injector inj(plan, 9);
  dsp::Signal x(200000, 0.0);  // 0.1 s at 2 MHz -> ~100 spikes expected
  inj.corrupt_waveform(x, 2.0e6);
  EXPECT_GT(inj.counters().spikes, 50);
  EXPECT_LT(inj.counters().spikes, 200);
}

TEST(Injector, ClipSaturatesSymmetrically) {
  FaultPlan plan;
  plan.reader.adc_clip_level = 0.5;
  Injector inj(plan, 10);
  dsp::Signal x{0.2, 0.9, -1.4, 0.5, -0.5};
  inj.clip_adc(x);
  EXPECT_EQ(x, (dsp::Signal{0.2, 0.5, -0.5, 0.5, -0.5}));
  EXPECT_EQ(inj.counters().clipped_samples, 2);
}

TEST(Injector, BitFlipChangesExactlyOneBit) {
  FaultPlan plan;
  plan.node.bit_flip_prob = 1.0;
  Injector inj(plan, 11);
  phy::Bits bits(96, 0);
  inj.corrupt_frame_bits(bits);
  EXPECT_EQ(std::count(bits.begin(), bits.end(), 1), 1);
  EXPECT_EQ(inj.counters().bit_flips, 1);
}

TEST(Injector, ClockDriftBoundedAndStable) {
  FaultPlan plan;
  plan.channel.clock_drift_ppm = 500.0;
  Injector inj(plan, 12);
  const Real f = inj.clock_drift_factor();
  EXPECT_GE(f, 1.0 - 500.0e-6);
  EXPECT_LE(f, 1.0 + 500.0e-6);
  EXPECT_NE(f, 1.0);  // 500 ppm configured: the draw is a.s. nonzero
  // The factor is drawn once per trial: repeated reads agree.
  EXPECT_DOUBLE_EQ(inj.clock_drift_factor(), f);
}

// ---------------------------------------------------------------------------
// Protocol-level integration: InventoryEngine retry state machine.
// ---------------------------------------------------------------------------

reader::InventoriedNode make_node(node::Firmware& fw, double snr = 30.0) {
  reader::InventoriedNode n;
  n.firmware = &fw;
  n.snr_db = snr;
  return n;
}

TEST(InventoryRetry, InertInjectorKeepsLegacyResultsBitIdentical) {
  // Attaching an injector with an EMPTY plan must not change a single draw:
  // the engine's outputs are exactly those of a plain run.
  auto run_once = [](bool attach) {
    node::FirmwareConfig fc;
    fc.node_id = 0x31;
    node::Firmware fw(fc, 77);
    fw.power_on();
    std::vector<reader::InventoriedNode> nodes{make_node(fw, 12.0)};
    reader::InventoryEngine::Config cfg;
    cfg.q = 0;
    cfg.sensors_to_read = {
        static_cast<std::uint8_t>(node::SensorId::kStress),
        static_cast<std::uint8_t>(node::SensorId::kTemperature)};
    reader::InventoryEngine engine(cfg, 99);
    Injector inert;
    if (attach) engine.set_fault_injector(&inert);
    return engine.run(nodes);
  };
  const reader::InventoryResult plain = run_once(false);
  const reader::InventoryResult with_inert = run_once(true);
  ASSERT_EQ(plain.readings.size(), with_inert.readings.size());
  for (std::size_t i = 0; i < plain.readings.size(); ++i) {
    EXPECT_EQ(plain.readings[i].node_id, with_inert.readings[i].node_id);
    EXPECT_EQ(plain.readings[i].sensor_id, with_inert.readings[i].sensor_id);
    EXPECT_DOUBLE_EQ(plain.readings[i].value, with_inert.readings[i].value);
  }
  EXPECT_EQ(plain.inventoried_ids, with_inert.inventoried_ids);
  EXPECT_EQ(plain.stats.acked, with_inert.stats.acked);
  EXPECT_EQ(plain.stats.slots, with_inert.stats.slots);
  EXPECT_EQ(plain.stats.retries, 0);
  EXPECT_EQ(with_inert.stats.retries, 0);
}

/// Fraction of single-node interrogations that inventory the node under the
/// given fault intensity, over `trials` independent (seed, trial) pairs.
double inventory_rate(double intensity, bool retry_enabled, int trials) {
  const FaultPlan plan = FaultPlan::at_intensity(intensity);
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    node::FirmwareConfig fc;
    fc.node_id = 0x40;
    node::Firmware fw(fc, 1000 + static_cast<std::uint64_t>(t));
    fw.power_on();
    // 30 dB link: the SNR-derived BER is negligible, so every loss comes
    // from the injected faults and the measurement isolates the policy.
    std::vector<reader::InventoriedNode> nodes{make_node(fw, 30.0)};
    reader::InventoryEngine::Config cfg;
    cfg.q = 0;
    cfg.max_rounds = 1;  // one shot: round-level re-arbitration can't help
    cfg.retry.enabled = retry_enabled;
    reader::InventoryEngine engine(cfg, dsp::trial_seed(555, t));
    Injector inj(plan, 555, static_cast<std::uint64_t>(t));
    engine.set_fault_injector(&inj);
    const reader::InventoryResult r = engine.run(nodes);
    if (!r.inventoried_ids.empty()) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

TEST(InventoryRetry, RecoversMidIntensityInterrogations) {
  // The PR's acceptance criterion: at mid fault intensity the no-retry
  // baseline loses >= 30% of interrogations while the retry state machine
  // recovers >= 90% of them.
  const double baseline = inventory_rate(0.5, /*retry=*/false, 400);
  const double recovered = inventory_rate(0.5, /*retry=*/true, 400);
  EXPECT_LE(baseline, 0.70) << "baseline should lose >= 30%";
  EXPECT_GE(recovered, 0.90) << "retry should recover >= 90%";
}

TEST(InventoryRetry, CountersTrackFailuresAndBackoff) {
  // Aggregated over several sessions: a single lucky seed can complete an
  // interrogation without tripping any fault, so per-session counters may
  // legitimately stay zero.
  const FaultPlan plan = FaultPlan::at_intensity(0.6);
  reader::InventoryStats totals;
  long replies_hit = 0;
  for (std::uint64_t t = 0; t < 20; ++t) {
    node::FirmwareConfig fc;
    fc.node_id = 0x50;
    node::Firmware fw(fc, 3 + t);
    fw.power_on();
    std::vector<reader::InventoriedNode> nodes{make_node(fw, 30.0)};
    reader::InventoryEngine::Config cfg;
    cfg.q = 0;
    cfg.max_rounds = 8;
    cfg.retry.enabled = true;
    reader::InventoryEngine engine(cfg, dsp::trial_seed(21, t));
    Injector inj(plan, 21, t);
    engine.set_fault_injector(&inj);
    const reader::InventoryResult r = engine.run(nodes);
    totals.retries += r.stats.retries;
    totals.timeouts += r.stats.timeouts;
    totals.crc_fails += r.stats.crc_fails;
    totals.backoff_slots += r.stats.backoff_slots;
    replies_hit += static_cast<long>(inj.counters().replies_lost +
                                     inj.counters().replies_corrupted);
  }
  EXPECT_GT(totals.retries, 0);
  EXPECT_GT(totals.timeouts + totals.crc_fails, 0);
  EXPECT_GE(totals.backoff_slots, totals.retries);  // backoff >= 1 slot each
  EXPECT_GT(replies_hit, 0);
}

TEST(InventoryRetry, GiveupBudgetBoundsRetries) {
  // A hopeless link with a tiny budget: the session spends the budget and
  // then gives up instead of spinning.
  FaultPlan plan;
  plan.channel.dropout_prob = 1.0;  // every reply lost
  node::FirmwareConfig fc;
  fc.node_id = 0x51;
  node::Firmware fw(fc, 4);
  fw.power_on();
  std::vector<reader::InventoriedNode> nodes{make_node(fw, 30.0)};
  reader::InventoryEngine::Config cfg;
  cfg.q = 0;
  cfg.max_rounds = 4;
  cfg.retry.enabled = true;
  cfg.retry.giveup_budget = 5;
  reader::InventoryEngine engine(cfg, 22);
  Injector inj(plan, 22);
  engine.set_fault_injector(&inj);
  const reader::InventoryResult r = engine.run(nodes);
  EXPECT_TRUE(r.inventoried_ids.empty());
  EXPECT_EQ(r.stats.retries, 5);  // exactly the budget, then give-ups
  EXPECT_EQ(r.stats.giveups, 1);
}

// ---------------------------------------------------------------------------
// Waveform-level integration: LinkSimulator.
// ---------------------------------------------------------------------------

TEST(FaultedLink, SameSeedSameInterrogation) {
  core::SystemConfig cfg = core::default_system();
  cfg.fault = FaultPlan::at_intensity(0.4);
  cfg.seed = 77;
  node::ConcreteEnvironment env;
  env.stress_mpa = 12.0;
  core::LinkSimulator a(cfg), b(cfg);
  const auto ra = a.interrogate(node::SensorId::kStress, env);
  const auto rb = b.interrogate(node::SensorId::kStress, env);
  EXPECT_EQ(ra.node_powered, rb.node_powered);
  EXPECT_EQ(ra.uplink_decoded, rb.uplink_decoded);
  EXPECT_EQ(ra.sensor_value.has_value(), rb.sensor_value.has_value());
  if (ra.sensor_value && rb.sensor_value) {
    EXPECT_DOUBLE_EQ(*ra.sensor_value, *rb.sensor_value);
  }
  EXPECT_EQ(a.injector().counters().bursts, b.injector().counters().bursts);
  EXPECT_EQ(a.injector().counters().dropouts,
            b.injector().counters().dropouts);
}

TEST(FaultedLink, CapLeakageSlowsCharging) {
  core::SystemConfig healthy = core::default_system();
  healthy.seed = 5;
  core::SystemConfig leaky = healthy;
  leaky.fault.node.cap_leak_amps = 2.0e-3;  // heavy parasitic drain
  const auto v_ok = core::LinkSimulator(healthy).charge(0.05).cap_voltage;
  const auto v_leak = core::LinkSimulator(leaky).charge(0.05).cap_voltage;
  EXPECT_LT(v_leak, v_ok);
}

TEST(FaultedLink, BrownoutDegradesUplink) {
  core::SystemConfig cfg = core::default_system();
  cfg.fault.node.brownout_prob = 1.0;  // every frame truncates mid-air
  dsp::Rng rng(6);
  const phy::Bits payload = phy::random_bits(32, rng);
  int faulted_ok = 0, clean_ok = 0;
  for (int t = 0; t < 8; ++t) {
    core::SystemConfig clean = cfg;
    clean.fault = FaultPlan{};
    clean.seed = static_cast<std::uint64_t>(100 + t);
    cfg.seed = clean.seed;
    if (core::LinkSimulator(clean).uplink_once(payload).uplink_decoded) {
      ++clean_ok;
    }
    if (core::LinkSimulator(cfg).uplink_once(payload).uplink_decoded) {
      ++faulted_ok;
    }
  }
  EXPECT_GT(clean_ok, 0);
  EXPECT_LT(faulted_ok, clean_ok);
}

}  // namespace
}  // namespace ecocap::fault
