// Scalar-vs-SIMD equivalence for the runtime-dispatched kernel layer.
//
// The contract (dsp/kernels/kernels.hpp): elementwise maps and the
// canonical striped/block-scan forms are *bit-identical* across every
// table, so these tests compare raw double bit patterns, not tolerances.
// Only the comparison against the old sequential reference (a different
// summation order) is toleranced.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/envelope.hpp"
#include "dsp/kernels/kernels.hpp"

namespace ecocap::dsp::kernels {
namespace {

// Lengths chosen to exercise empty input, sub-block tails, exact block
// multiples, and long buffers; offsets shift the data off 32-byte
// alignment so unaligned SIMD loads are covered.
const std::size_t kLengths[] = {0, 1, 3, 7, 8, 9, 31, 64, 257, 1000, 1023};
const std::size_t kOffsets[] = {0, 1, 3};

Signal random_signal(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  Signal out(n);
  for (Real& v : out) v = dist(rng);
  return out;
}

bool bit_equal(Real a, Real b) {
  return std::memcmp(&a, &b, sizeof(Real)) == 0;
}

/// Every non-scalar table that can run on this machine.
std::vector<const KernelTable*> simd_tables() {
  std::vector<const KernelTable*> out;
  for (Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    if (available(isa)) out.push_back(&table(isa));
  }
  return out;
}

TEST(KernelDispatch, IsaNamesParse) {
  Isa isa;
  ASSERT_TRUE(isa_from_name("scalar", isa));
  EXPECT_EQ(isa, Isa::kScalar);
  ASSERT_TRUE(isa_from_name("avx2", isa));
  EXPECT_EQ(isa, Isa::kAvx2);
  ASSERT_TRUE(isa_from_name("neon", isa));
  EXPECT_EQ(isa, Isa::kNeon);
  ASSERT_TRUE(isa_from_name("auto", isa));
  EXPECT_TRUE(available(isa));  // auto always names a runnable table
  EXPECT_FALSE(isa_from_name("sse9", isa));
  EXPECT_FALSE(isa_from_name("", isa));
  EXPECT_FALSE(isa_from_name(nullptr, isa));
}

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(available(Isa::kScalar));
  EXPECT_EQ(scalar_table().isa, Isa::kScalar);
  EXPECT_TRUE(available(active_isa()));
}

TEST(KernelDispatch, UnavailableIsaFallsBackToScalar) {
  for (Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    if (!available(isa)) {
      EXPECT_EQ(table(isa).isa, Isa::kScalar);
    } else {
      EXPECT_EQ(table(isa).isa, isa);
    }
  }
}

TEST(KernelEquivalence, DotBitIdenticalAcrossTables) {
  const KernelTable& ref = scalar_table();
  for (const KernelTable* t : simd_tables()) {
    for (std::size_t n : kLengths) {
      for (std::size_t off : kOffsets) {
        const Signal a = random_signal(n + off, 17u + static_cast<std::uint32_t>(n));
        const Signal b = random_signal(n + off, 91u + static_cast<std::uint32_t>(n));
        const Real rs = ref.dot(a.data() + off, b.data() + off, n);
        const Real rv = t->dot(a.data() + off, b.data() + off, n);
        EXPECT_TRUE(bit_equal(rs, rv))
            << isa_name(t->isa) << " dot n=" << n << " off=" << off;
      }
    }
  }
}

TEST(KernelEquivalence, DotMatchesSequentialSumWithinTolerance) {
  // The striped order is a different (but fixed) summation order than the
  // naive sequential loop; agreement is to rounding, not bitwise. This is
  // the documented "tolerance mode" for reductions.
  const Signal a = random_signal(1023, 5);
  const Signal b = random_signal(1023, 6);
  Real seq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) seq += a[i] * b[i];
  const Real striped = scalar_table().dot(a.data(), b.data(), a.size());
  EXPECT_NEAR(striped, seq, 1e-12 * static_cast<Real>(a.size()));
}

TEST(KernelEquivalence, CorrelateValidBitIdenticalAcrossTables) {
  const KernelTable& ref = scalar_table();
  for (const KernelTable* t : simd_tables()) {
    for (std::size_t nh : {1u, 5u, 32u, 129u}) {
      const std::size_t nx = nh + 100;
      const Signal x = random_signal(nx, 23);
      const Signal h = random_signal(nh, 29);
      Signal out_s(nx - nh + 1), out_v(nx - nh + 1);
      ref.correlate_valid(x.data(), nx, h.data(), nh, out_s.data());
      t->correlate_valid(x.data(), nx, h.data(), nh, out_v.data());
      for (std::size_t k = 0; k < out_s.size(); ++k) {
        ASSERT_TRUE(bit_equal(out_s[k], out_v[k]))
            << isa_name(t->isa) << " nh=" << nh << " k=" << k;
      }
    }
  }
}

TEST(KernelEquivalence, OnepoleAndEnvelopeBitIdenticalAcrossTables) {
  const KernelTable& ref = scalar_table();
  const Real alpha = 0.125;
  for (const KernelTable* t : simd_tables()) {
    for (std::size_t n : kLengths) {
      for (std::size_t off : kOffsets) {
        const Signal x = random_signal(n + off, 7u + static_cast<std::uint32_t>(n));
        Signal ys(n), yv(n);
        Real ss = 0.25, sv = 0.25;
        ref.onepole(x.data() + off, ys.data(), n, alpha, &ss);
        t->onepole(x.data() + off, yv.data(), n, alpha, &sv);
        ASSERT_TRUE(bit_equal(ss, sv)) << isa_name(t->isa) << " n=" << n;
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(bit_equal(ys[i], yv[i]))
              << isa_name(t->isa) << " onepole n=" << n << " i=" << i;
        }
        ss = sv = 0.5;
        ref.envelope(x.data() + off, ys.data(), n, alpha, &ss);
        t->envelope(x.data() + off, yv.data(), n, alpha, &sv);
        ASSERT_TRUE(bit_equal(ss, sv)) << isa_name(t->isa) << " n=" << n;
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(bit_equal(ys[i], yv[i]))
              << isa_name(t->isa) << " envelope n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelEquivalence, BiquadMatchesSeedRecurrenceExactly) {
  // The biquad kernel must be bit-identical to the seed per-sample direct
  // form I — across every table (SIMD tables reuse the scalar recurrence).
  const BiquadCoeffs c{0.2, 0.3, 0.1, -0.5, 0.25};
  const Signal x = random_signal(1000, 11);
  Signal seed_y(x.size());
  Real x1 = 0.0, x2 = 0.0, y1 = 0.0, y2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Real yi =
        c.b0 * x[i] + c.b1 * x1 + c.b2 * x2 - c.a1 * y1 - c.a2 * y2;
    x2 = x1;
    x1 = x[i];
    y2 = y1;
    y1 = yi;
    seed_y[i] = yi;
  }
  std::vector<const KernelTable*> tables = simd_tables();
  tables.push_back(&scalar_table());
  for (const KernelTable* t : tables) {
    Signal y(x.size());
    BiquadState s;
    t->biquad(x.data(), y.data(), x.size(), c, s);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_TRUE(bit_equal(seed_y[i], y[i])) << isa_name(t->isa) << " " << i;
    }
    EXPECT_TRUE(bit_equal(s.y1, y1));
    EXPECT_TRUE(bit_equal(s.y2, y2));
  }
}

TEST(KernelEquivalence, BiquadInPlaceMatchesOutOfPlace) {
  const BiquadCoeffs c{0.2, 0.3, 0.1, -0.5, 0.25};
  Signal x = random_signal(333, 13);
  Signal y(x.size());
  BiquadState s1, s2;
  active().biquad(x.data(), y.data(), x.size(), c, s1);
  active().biquad(x.data(), x.data(), x.size(), c, s2);  // in place
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_TRUE(bit_equal(x[i], y[i])) << i;
  }
}

TEST(KernelEquivalence, BiquadCascadeMatchesSequentialSections) {
  const BiquadCoeffs cs[2] = {{0.2, 0.3, 0.1, -0.5, 0.25},
                              {0.7, -0.1, 0.05, 0.3, -0.2}};
  const Signal x = random_signal(500, 19);
  Signal y_cascade(x.size());
  BiquadState st_cascade[2];
  biquad_cascade(x.data(), y_cascade.data(), x.size(), cs, st_cascade, 2);
  Signal mid(x.size()), y_seq(x.size());
  BiquadState st_seq[2];
  active().biquad(x.data(), mid.data(), x.size(), cs[0], st_seq[0]);
  active().biquad(mid.data(), y_seq.data(), x.size(), cs[1], st_seq[1]);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_TRUE(bit_equal(y_cascade[i], y_seq[i])) << i;
  }
}

TEST(KernelEquivalence, FdtdRowsBitIdenticalAcrossTables) {
  const std::size_t nx = 67;  // odd width -> SIMD tail path exercised
  const KernelTable& ref = scalar_table();
  for (const KernelTable* t : simd_tables()) {
    for (bool with_forces : {false, true}) {
      // Three rows of every field; the kernels update the middle row.
      auto mk = [&](std::uint32_t seed) { return random_signal(3 * nx, seed); };
      Signal vx_s = mk(1), vy_s = mk(2), sxx = mk(3), syy = mk(4), sxy = mk(5);
      Signal rho = mk(6), lambda = mk(7), mu = mk(8);
      for (Real& v : rho) v = std::abs(v) + 0.5;
      Signal fx_s = mk(9), fy_s = mk(10);
      Signal vx_v = vx_s, vy_v = vy_s, fx_v = fx_s, fy_v = fy_s;

      auto velocity_args = [&](Signal& vx, Signal& vy, Signal& fx,
                               Signal& fy) {
        FdtdVelocityRowArgs a{};
        a.vx = vx.data() + nx;
        a.vy = vy.data() + nx;
        a.sxx = sxx.data() + nx;
        a.sxy = sxy.data() + nx;
        a.sxy_dn = sxy.data();
        a.syy = syy.data() + nx;
        a.syy_up = syy.data() + 2 * nx;
        a.rho = rho.data() + nx;
        a.fx = with_forces ? fx.data() + nx : nullptr;
        a.fy = with_forces ? fy.data() + nx : nullptr;
        a.i0 = 1;
        a.i1 = nx - 1;
        a.dt = 1e-7;
        a.inv_dx = 500.0;
        return a;
      };
      const auto as = velocity_args(vx_s, vy_s, fx_s, fy_s);
      ref.fdtd_velocity_row(as);
      const auto av = velocity_args(vx_v, vy_v, fx_v, fy_v);
      t->fdtd_velocity_row(av);
      for (std::size_t i = 0; i < 3 * nx; ++i) {
        ASSERT_TRUE(bit_equal(vx_s[i], vx_v[i]))
            << isa_name(t->isa) << " vx i=" << i << " forces=" << with_forces;
        ASSERT_TRUE(bit_equal(vy_s[i], vy_v[i]))
            << isa_name(t->isa) << " vy i=" << i << " forces=" << with_forces;
        ASSERT_TRUE(bit_equal(fx_s[i], fx_v[i]))
            << isa_name(t->isa) << " fx i=" << i << " forces=" << with_forces;
      }
      if (with_forces) {
        // Consumed entries must be zeroed by the pass itself.
        for (std::size_t i = 1; i + 1 < nx; ++i) {
          EXPECT_EQ(fx_v[nx + i], 0.0);
          EXPECT_EQ(fy_v[nx + i], 0.0);
        }
      }

      Signal sxx_s = mk(11), syy_s = mk(12), sxy_s = mk(13);
      Signal sxx_v = sxx_s, syy_v = syy_s, sxy_v = sxy_s;
      auto stress_args = [&](Signal& osxx, Signal& osyy, Signal& osxy) {
        FdtdStressRowArgs a{};
        a.sxx = osxx.data() + nx;
        a.syy = osyy.data() + nx;
        a.sxy = osxy.data() + nx;
        a.vx = vx_s.data() + nx;
        a.vx_up = vx_s.data() + 2 * nx;
        a.vy = vy_s.data() + nx;
        a.vy_dn = vy_s.data();
        a.lambda = lambda.data() + nx;
        a.mu = mu.data() + nx;
        a.i0 = 1;
        a.i1 = nx - 1;
        a.dt = 1e-7;
        a.inv_dx = 500.0;
        return a;
      };
      const auto ss = stress_args(sxx_s, syy_s, sxy_s);
      ref.fdtd_stress_row(ss);
      const auto sv = stress_args(sxx_v, syy_v, sxy_v);
      t->fdtd_stress_row(sv);
      for (std::size_t i = 0; i < 3 * nx; ++i) {
        ASSERT_TRUE(bit_equal(sxx_s[i], sxx_v[i]))
            << isa_name(t->isa) << " sxx i=" << i;
        ASSERT_TRUE(bit_equal(syy_s[i], syy_v[i]))
            << isa_name(t->isa) << " syy i=" << i;
        ASSERT_TRUE(bit_equal(sxy_s[i], sxy_v[i]))
            << isa_name(t->isa) << " sxy i=" << i;
      }
    }
  }
}

TEST(KernelUsers, OnePoleOutParamDoesNotAllocateAtSteadyState) {
  OnePoleLowpass lp(1.0e6, 10.0e3);
  const Signal x = random_signal(4096, 31);
  Signal out;
  lp.process(x, out);  // first call sizes the buffer
  const Real* stable = out.data();
  for (int pass = 0; pass < 8; ++pass) {
    lp.process(x, out);
    EXPECT_EQ(out.data(), stable) << "buffer reallocated on pass " << pass;
  }
}

TEST(KernelUsers, EnvelopeDetectorBatchMatchesKernel) {
  EnvelopeDetector det(1.0e6, 20.0e3);
  const Signal x = random_signal(1000, 37);
  Signal batch;
  det.process(x, batch);
  det.reset();
  Signal direct(x.size());
  Real state = 0.0;
  active().envelope(x.data(), direct.data(), x.size(),
                    1.0 - std::exp(-kTwoPi * 20.0e3 / 1.0e6), &state);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_TRUE(bit_equal(batch[i], direct[i])) << i;
  }
}

}  // namespace
}  // namespace ecocap::dsp::kernels
