#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/thread_pool.hpp"
#include "wave/fdtd.hpp"

namespace ecocap::wave {
namespace {

/// Ricker wavelet source (standard FDTD excitation).
std::vector<Real> ricker(Real f0, Real dt, std::size_t n) {
  std::vector<Real> w(n);
  const Real t0 = 1.5 / f0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = static_cast<Real>(i) * dt - t0;
    const Real a = 3.14159265358979 * f0 * t;
    w[i] = (1.0 - 2.0 * a * a) * std::exp(-a * a);
  }
  return w;
}

/// First-arrival time at a receiver: index where the velocity magnitude
/// first exceeds `frac` of the run's maximum.
struct ArrivalProbe {
  std::vector<Real> record;
  Real first_arrival(Real dt, Real frac = 0.2) const {
    Real peak = 0.0;
    for (Real v : record) peak = std::max(peak, v);
    for (std::size_t i = 0; i < record.size(); ++i) {
      if (record[i] > frac * peak) return static_cast<Real>(i) * dt;
    }
    return -1.0;
  }
};

const Material kMedium = materials::reference_concrete();

TEST(Fdtd, CflLimitEnforced) {
  ElasticFdtd::Config cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.dt = 1.0;  // absurdly large
  EXPECT_THROW(ElasticFdtd(kMedium, cfg), std::invalid_argument);
  cfg.dt = 0.0;
  ElasticFdtd ok(kMedium, cfg);
  EXPECT_GT(ok.dt(), 0.0);
  EXPECT_LE(ok.dt(), ok.cfl_dt());
}

TEST(Fdtd, InvalidGridThrows) {
  ElasticFdtd::Config cfg;
  cfg.nx = 4;
  EXPECT_THROW(ElasticFdtd(kMedium, cfg), std::invalid_argument);
}

TEST(Fdtd, QuiescentGridStaysQuiet) {
  ElasticFdtd::Config cfg;
  cfg.nx = 64;
  cfg.ny = 64;
  ElasticFdtd sim(kMedium, cfg);
  for (int i = 0; i < 50; ++i) sim.step();
  EXPECT_EQ(sim.total_energy(), 0.0);
}

TEST(Fdtd, PWaveSpeedMatchesMaterial) {
  // A y-force radiates P along the y axis: time the first arrival at a
  // receiver straight above the source.
  ElasticFdtd::Config cfg;
  cfg.nx = 160;
  cfg.ny = 360;
  cfg.dx = 2.0e-3;
  ElasticFdtd sim(kMedium, cfg);
  const auto src = ricker(90.0e3, sim.dt(), 200);
  const std::size_t sx = 80, sy = 60, ry = 300;
  const Real distance = static_cast<Real>(ry - sy) * cfg.dx;

  ArrivalProbe probe;
  const auto steps = static_cast<std::size_t>(
      1.8 * distance / kMedium.cp / sim.dt());
  for (std::size_t t = 0; t < steps; ++t) {
    if (t < src.size()) sim.add_force(sx, sy, 1, src[t]);
    sim.step();
    probe.record.push_back(sim.velocity_magnitude(sx, ry));
  }
  const Real t_arr = probe.first_arrival(sim.dt());
  ASSERT_GT(t_arr, 0.0);
  const Real measured_cp = distance / t_arr;
  EXPECT_NEAR(measured_cp, kMedium.cp, 0.12 * kMedium.cp);
}

TEST(Fdtd, SWaveSpeedMatchesMaterial) {
  // The same y-force radiates S along the x axis (transverse motion).
  ElasticFdtd::Config cfg;
  cfg.nx = 360;
  cfg.ny = 160;
  cfg.dx = 2.0e-3;
  ElasticFdtd sim(kMedium, cfg);
  const auto src = ricker(90.0e3, sim.dt(), 200);
  const std::size_t sx = 60, sy = 80, rx = 300;
  const Real distance = static_cast<Real>(rx - sx) * cfg.dx;

  ArrivalProbe probe;
  const auto steps = static_cast<std::size_t>(
      1.8 * distance / kMedium.cs / sim.dt());
  for (std::size_t t = 0; t < steps; ++t) {
    if (t < src.size()) sim.add_force(sx, sy, 1, src[t]);
    sim.step();
    probe.record.push_back(sim.velocity_magnitude(rx, sy));
  }
  // Use a higher threshold: a weak P precursor exists off-axis; the S
  // arrival carries the bulk of the energy.
  const Real t_arr = probe.first_arrival(sim.dt(), 0.4);
  ASSERT_GT(t_arr, 0.0);
  const Real measured_cs = distance / t_arr;
  EXPECT_NEAR(measured_cs, kMedium.cs, 0.15 * kMedium.cs);
}

TEST(Fdtd, ModeSeparationByDivergenceAndCurl) {
  // Along the force axis the motion is compressional (div-dominated);
  // perpendicular it is shear (curl-dominated) — the Appendix-A Helmholtz
  // decomposition observed numerically.
  ElasticFdtd::Config cfg;
  cfg.nx = 260;
  cfg.ny = 260;
  cfg.dx = 2.0e-3;
  ElasticFdtd sim(kMedium, cfg);
  const auto src = ricker(90.0e3, sim.dt(), 180);
  const std::size_t c = 130;
  // Probe window: 0.08-0.18 m from the source. Snapshot the P direction
  // when the P front is mid-window...
  const auto steps_p = static_cast<std::size_t>(0.13 / kMedium.cp / sim.dt());
  for (std::size_t t = 0; t < steps_p; ++t) {
    if (t < src.size()) sim.add_force(c, c, 1, src[t]);
    sim.step();
  }
  const auto above = sim.mode_energies(c - 10, c + 40, c + 10, c + 90);
  // ...then keep stepping until the slower S front reaches the same radius
  // and snapshot the S direction.
  const auto steps_s = static_cast<std::size_t>(0.13 / kMedium.cs / sim.dt());
  for (std::size_t t = steps_p; t < steps_s; ++t) {
    if (t < src.size()) sim.add_force(c, c, 1, src[t]);
    sim.step();
  }
  const auto beside = sim.mode_energies(c + 40, c - 10, c + 90, c + 10);
  EXPECT_GT(above.p, 2.0 * above.s);
  EXPECT_GT(beside.s, 2.0 * beside.p);
}

TEST(Fdtd, FreeSurfaceReflectsEnergy) {
  // Without a sponge, a pulse keeps (nearly) all its energy after hitting
  // the free boundary — the Eq. 1 physics that fills the wall with
  // S-reflections.
  ElasticFdtd::Config cfg;
  cfg.nx = 200;
  cfg.ny = 200;
  cfg.dx = 2.0e-3;
  ElasticFdtd sim(kMedium, cfg);
  const auto src = ricker(90.0e3, sim.dt(), 150);
  for (std::size_t t = 0; t < 150; ++t) {
    sim.add_force(100, 100, 1, src[t]);
    sim.step();
  }
  const Real e_before = sim.total_energy();
  // Long enough for multiple boundary interactions.
  for (int t = 0; t < 900; ++t) sim.step();
  const Real e_after = sim.total_energy();
  EXPECT_GT(e_after, 0.55 * e_before);  // leapfrog proxy energy wobbles
}

TEST(Fdtd, SpongeAbsorbsEnergy) {
  ElasticFdtd::Config cfg;
  cfg.nx = 200;
  cfg.ny = 200;
  cfg.dx = 2.0e-3;
  cfg.sponge_cells = 30;
  ElasticFdtd sim(kMedium, cfg);
  const auto src = ricker(90.0e3, sim.dt(), 150);
  for (std::size_t t = 0; t < 150; ++t) {
    sim.add_force(100, 100, 1, src[t]);
    sim.step();
  }
  const Real e_before = sim.total_energy();
  for (int t = 0; t < 900; ++t) sim.step();
  EXPECT_LT(sim.total_energy(), 0.3 * e_before);
}

TEST(Fdtd, RegionFillChangesLocalSpeed) {
  // A steel inclusion must carry the pulse faster than concrete: compare
  // arrival at the same distance through each half.
  ElasticFdtd::Config cfg;
  cfg.nx = 320;
  cfg.ny = 200;
  cfg.dx = 2.0e-3;
  // dt must satisfy the *steel* CFL; pre-set it.
  const Material steel = materials::steel();
  cfg.dt = 0.9 * cfg.dx / (std::sqrt(2.0) * steel.cp);
  ElasticFdtd sim(kMedium, cfg);
  sim.fill_region(0, 0, cfg.nx - 1, 99, steel);  // lower half steel

  const auto src = ricker(90.0e3, sim.dt(), 200);
  const std::size_t sx = 40;
  ArrivalProbe steel_probe, conc_probe;
  const auto steps = static_cast<std::size_t>(
      1.6 * (240.0 * cfg.dx) / kMedium.cp / sim.dt());
  for (std::size_t t = 0; t < steps; ++t) {
    if (t < src.size()) {
      sim.add_force(sx, 50, 1, src[t]);    // in the steel half
      sim.add_force(sx, 150, 1, src[t]);   // in the concrete half
    }
    sim.step();
    steel_probe.record.push_back(sim.velocity_magnitude(280, 50));
    conc_probe.record.push_back(sim.velocity_magnitude(280, 150));
  }
  const Real t_steel = steel_probe.first_arrival(sim.dt());
  const Real t_conc = conc_probe.first_arrival(sim.dt());
  ASSERT_GT(t_steel, 0.0);
  ASSERT_GT(t_conc, 0.0);
  EXPECT_LT(t_steel, t_conc);
}

/// Row-band parallelism must not change a single bit: every cell update
/// within a pass is independent, so the fields can't depend on worker
/// count. Run the same excitation serially and on a 4-worker pool and
/// require exact equality everywhere. `quiet_steps` steps run before the
/// burst starts so the no-forces-pending fast path is exercised on both
/// sides, and more quiet steps follow the burst for the flag's falling
/// edge.
void expect_serial_parallel_bit_identical(std::size_t n,
                                          std::size_t sponge_cells,
                                          std::size_t steps,
                                          std::size_t quiet_steps = 0) {
  core::ThreadPool pool(4);
  ElasticFdtd::Config serial_cfg;
  serial_cfg.nx = n;
  serial_cfg.ny = n;
  serial_cfg.dx = 2.0e-3;
  serial_cfg.sponge_cells = sponge_cells;
  serial_cfg.parallel = false;
  ElasticFdtd::Config par_cfg = serial_cfg;
  par_cfg.parallel = true;
  par_cfg.pool = &pool;

  ElasticFdtd serial(kMedium, serial_cfg);
  ElasticFdtd parallel(kMedium, par_cfg);
  const auto src = ricker(90.0e3, serial.dt(), std::min<std::size_t>(steps / 2, 120));
  for (std::size_t t = 0; t < steps; ++t) {
    if (t >= quiet_steps && t - quiet_steps < src.size()) {
      serial.add_force(n / 2, n / 2, 1, src[t - quiet_steps]);
      parallel.add_force(n / 2, n / 2, 1, src[t - quiet_steps]);
    }
    serial.step();
    parallel.step();
  }
  ASSERT_GT(serial.total_energy(), 0.0);
  EXPECT_EQ(serial.total_energy(), parallel.total_energy());
  for (std::size_t iy = 0; iy < serial_cfg.ny; ++iy) {
    for (std::size_t ix = 0; ix < serial_cfg.nx; ++ix) {
      ASSERT_EQ(serial.vx(ix, iy), parallel.vx(ix, iy))
          << "vx mismatch at (" << ix << ", " << iy << ")";
      ASSERT_EQ(serial.vy(ix, iy), parallel.vy(ix, iy))
          << "vy mismatch at (" << ix << ", " << iy << ")";
    }
  }
}

TEST(Fdtd, SerialAndFourThreadStepsBitIdentical) {
  expect_serial_parallel_bit_identical(128, 12, 200);
}

TEST(Fdtd, SerialAndFourThreadStepsBitIdentical64FreeSurface) {
  expect_serial_parallel_bit_identical(64, 0, 150);
}

TEST(Fdtd, SerialAndFourThreadStepsBitIdentical512Sponge) {
  expect_serial_parallel_bit_identical(512, 24, 40);
}

TEST(Fdtd, SerialAndFourThreadStepsBitIdenticalMidRunForces) {
  // Quiet leading steps exercise the skip-forces velocity path before the
  // burst toggles forces_pending_ on, then off again after it ends.
  expect_serial_parallel_bit_identical(128, 0, 120, 25);
}

TEST(Fdtd, ForceOffGridThrows) {
  ElasticFdtd::Config cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  ElasticFdtd sim(kMedium, cfg);
  EXPECT_THROW(sim.add_force(100, 1, 1, 1.0), std::out_of_range);
}

}  // namespace
}  // namespace ecocap::wave
