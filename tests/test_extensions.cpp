#include <gtest/gtest.h>

#include <cmath>

#include "channel/scatterers.hpp"
#include "core/ber_harness.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"
#include "phy/miller.hpp"
#include "shm/modal.hpp"

namespace ecocap {
namespace {

using dsp::Real;

// ---------------------------------------------------------------- Miller

TEST(Miller, EncodeLengthMatchesBits) {
  phy::MillerParams p;
  p.bitrate = 1.0;
  const dsp::Signal x = phy::miller_encode(phy::Bits{1, 0, 1, 1}, p, 64.0);
  EXPECT_EQ(x.size(), 256u);
}

TEST(Miller, SubcarrierCyclesPerSymbol) {
  // With M = 4, each symbol must contain 4 subcarrier cycles: 8 sign runs.
  phy::MillerParams p;
  p.bitrate = 1.0;
  p.m = 4;
  const dsp::Signal x = phy::miller_encode(phy::Bits{1}, p, 64.0);
  int transitions = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if ((x[i] > 0) != (x[i - 1] > 0)) ++transitions;
  }
  // 4 cycles -> 7 interior half-cycle boundaries; the data-1 mid inversion
  // lands exactly on one of them and cancels it.
  EXPECT_GE(transitions, 6);
  EXPECT_LE(transitions, 9);
}

TEST(Miller, InvalidParamsThrow) {
  phy::MillerParams p;
  p.m = 3;
  EXPECT_THROW((void)phy::miller_encode(phy::Bits{1}, p, 64.0),
               std::invalid_argument);
  p.m = 4;
  p.bitrate = 10.0;
  EXPECT_THROW((void)phy::miller_encode(phy::Bits{1}, p, 64.0),
               std::invalid_argument);
}

TEST(Miller, CleanRoundTrip) {
  dsp::Rng rng(3);
  phy::MillerParams p;
  p.bitrate = 1.0;
  p.m = 4;
  const phy::Bits tx = phy::random_bits(96, rng);
  const dsp::Signal x = phy::miller_encode(tx, p, 64.0);
  EXPECT_EQ(phy::miller_decode(x, p, 64.0, tx.size()), tx);
}

TEST(Miller, InvertedCaptureRoundTrip) {
  dsp::Rng rng(4);
  phy::MillerParams p;
  p.bitrate = 1.0;
  const phy::Bits tx = phy::random_bits(48, rng);
  dsp::Signal x = phy::miller_encode(tx, p, 64.0);
  for (auto& v : x) v = -v;
  EXPECT_EQ(phy::miller_decode(x, p, 64.0, tx.size()), tx);
}

TEST(Miller, SurvivesNoiseBetterThanRawThreshold) {
  dsp::Rng rng(5);
  phy::MillerParams p;
  p.bitrate = 1.0;
  p.m = 4;
  const phy::Bits tx = phy::random_bits(200, rng);
  dsp::Signal x = phy::miller_encode(tx, p, 64.0);
  dsp::add_awgn(x, 1.2, rng);
  const phy::Bits rx = phy::miller_decode(x, p, 64.0, tx.size());
  // Subcarrier-correlated ML decoding: only a few errors at sigma 1.2.
  EXPECT_LT(phy::hamming_distance(tx, rx), 12u);
}

/// Property: round trip across M values and bitrates.
struct MillerCase {
  int m;
  double spb;
};
class MillerSweep : public ::testing::TestWithParam<MillerCase> {};

TEST_P(MillerSweep, RoundTrips) {
  dsp::Rng rng(6);
  phy::MillerParams p;
  p.bitrate = 1.0;
  p.m = GetParam().m;
  const Real fs = GetParam().spb;
  const phy::Bits tx = phy::random_bits(64, rng);
  const dsp::Signal x = phy::miller_encode(tx, p, fs);
  EXPECT_EQ(phy::miller_decode(x, p, fs, tx.size()), tx);
}

INSTANTIATE_TEST_SUITE_P(Ms, MillerSweep,
                         ::testing::Values(MillerCase{2, 32.0},
                                           MillerCase{4, 64.0},
                                           MillerCase{8, 64.0},
                                           MillerCase{4, 128.0}));

// ------------------------------------------------------------ Scatterers

TEST(Scatterers, EmptyFieldIsTransparent) {
  const channel::ScattererField field({}, wave::materials::reference_concrete());
  EXPECT_DOUBLE_EQ(
      field.path_gain(wave::Point2{0.0, 0.0}, wave::Point2{1.0, 0.1}, 230e3),
      1.0);
}

TEST(Scatterers, BlockingScattererReducesGain) {
  channel::Scatterer s;
  s.position = wave::Point2{0.5, 0.05};
  s.radius = 0.02;
  s.blockage = 0.6;
  const channel::ScattererField field({s},
                                      wave::materials::reference_concrete());
  const Real blocked =
      field.path_gain(wave::Point2{0.0, 0.05}, wave::Point2{1.0, 0.05}, 230e3);
  const Real clear =
      field.path_gain(wave::Point2{0.0, 0.30}, wave::Point2{1.0, 0.30}, 230e3);
  EXPECT_LT(blocked, clear);
  EXPECT_NEAR(clear, 1.0, 1e-9);
}

TEST(Scatterers, GainIsFrequencySelective) {
  dsp::Rng rng(7);
  const auto field = channel::ScattererField::random_rebar(
      32, 2.0, 0.3, wave::materials::reference_concrete(), rng);
  Real lo = 2.0, hi = 0.0;
  for (int f = 200; f <= 260; f += 2) {
    const Real g = field.path_gain(wave::Point2{0.0, 0.15},
                                   wave::Point2{1.8, 0.13}, f * 1000.0);
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  EXPECT_GT(hi - lo, 0.03);  // fading ripple across the band
  EXPECT_LE(hi, 1.0);        // scatterers never amplify past the clear path
}

TEST(Scatterers, FineTuningRecoversChannel) {
  // §3.5: "fine-tuning the frequency can significantly improve the channel".
  dsp::Rng rng(8);
  const auto field = channel::ScattererField::random_rebar(
      16, 2.0, 0.3, wave::materials::reference_concrete(), rng);
  const wave::Point2 a{0.0, 0.15}, b{1.7, 0.12};
  const Real nominal = field.path_gain(a, b, 230.0e3);
  const auto tuned = field.best_frequency(a, b, 210.0e3, 250.0e3);
  EXPECT_GE(tuned.gain, nominal);
  EXPECT_GE(tuned.frequency, 210.0e3);
  EXPECT_LE(tuned.frequency, 250.0e3);
}

TEST(Scatterers, RandomRebarWithinBounds) {
  dsp::Rng rng(9);
  const auto field = channel::ScattererField::random_rebar(
      20, 1.5, 0.25, wave::materials::reference_concrete(), rng);
  EXPECT_EQ(field.count(), 20u);
  for (const auto& s : field.scatterers()) {
    EXPECT_GE(s.position.x, 0.0);
    EXPECT_LE(s.position.x, 1.5);
    EXPECT_GE(s.position.y, 0.0);
    EXPECT_LE(s.position.y, 0.25);
  }
}

// ----------------------------------------------------------------- Modal

TEST(Modal, EstimatesSynthesizedMode) {
  const auto x = shm::synthesize_vibration(2.1, 0.02, 100.0, 600.0, 1);
  const auto est = shm::estimate_mode(x, 100.0, 0.5, 10.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->frequency_hz, 2.1, 0.1);
  EXPECT_GT(est->damping_ratio, 0.0);
  EXPECT_LT(est->damping_ratio, 0.2);
}

TEST(Modal, TooShortRecordRejected) {
  const std::vector<Real> x(100, 0.0);
  EXPECT_FALSE(shm::estimate_mode(x, 100.0, 0.5, 10.0, 1024).has_value());
}

TEST(Modal, DetectsStiffnessLoss) {
  // 4% frequency drop ~ 8% stiffness loss: must trip the damage alarm.
  const auto healthy = shm::synthesize_vibration(2.10, 0.02, 100.0, 600.0, 2);
  const auto damaged = shm::synthesize_vibration(2.016, 0.02, 100.0, 600.0, 3);
  const auto d = shm::assess_damage(healthy, damaged, 100.0, 0.5, 10.0);
  EXPECT_TRUE(d.damaged);
  EXPECT_NEAR(d.frequency_shift, -0.04, 0.015);
  EXPECT_LT(d.stiffness_change, -0.05);
}

TEST(Modal, HealthyStructureNotFlagged) {
  const auto a = shm::synthesize_vibration(2.10, 0.02, 100.0, 600.0, 4);
  const auto b = shm::synthesize_vibration(2.10, 0.02, 100.0, 600.0, 5);
  const auto d = shm::assess_damage(a, b, 100.0, 0.5, 10.0);
  EXPECT_FALSE(d.damaged);
  EXPECT_NEAR(d.frequency_shift, 0.0, 0.01);
}

TEST(Modal, WelchSpectrumPeaksAtMode) {
  const auto x = shm::synthesize_vibration(5.0, 0.02, 100.0, 300.0, 6);
  const auto spec = shm::welch_spectrum(x, 100.0, 512);
  const Real bin_hz = 100.0 / 512.0;
  std::size_t best = 0;
  for (std::size_t k = 1; k < spec.size(); ++k) {
    if (spec[k] > spec[best]) best = k;
  }
  EXPECT_NEAR(bin_hz * static_cast<Real>(best), 5.0, 0.3);
}

}  // namespace
}  // namespace ecocap
