// Streaming transceiver tests: the SPSC ring's concurrency contract, the
// stream clock, bit-identity of the streaming channel stages against their
// batch twins at arbitrary block splits, and the end-to-end daemon —
// including the headline claim that the decoded stream is bit-identical at
// any block size and in threaded vs inline mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <thread>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/spsc_ring.hpp"
#include "core/stream_clock.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"
#include "fault/fault.hpp"
#include "phy/carrier.hpp"
#include "stream/stream_pipeline.hpp"
#include "stream/streaming_reader.hpp"

namespace {

using ecocap::dsp::Real;
using ecocap::dsp::Signal;

// ---------------------------------------------------------------------------
// core::SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ecocap::core::SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(ecocap::core::SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(ecocap::core::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(ecocap::core::SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(ecocap::core::SpscRing<int>(5).capacity(), 8u);
  EXPECT_THROW(ecocap::core::SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  ecocap::core::SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());

  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // empty pop fails

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full push fails

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO order
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, FailedPushLeavesValueUnmoved) {
  ecocap::core::SpscRing<std::vector<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::vector<int>{1}));
  ASSERT_TRUE(ring.try_push(std::vector<int>{2}));

  std::vector<int> v{3, 4, 5};
  EXPECT_FALSE(ring.try_push(std::move(v)));
  EXPECT_EQ(v.size(), 3u);  // a rejected push must not consume the value

  std::vector<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(std::move(v)));
  EXPECT_TRUE(v.empty());  // now it was moved
}

TEST(SpscRing, WrapAroundPreservesSequence) {
  // Free-running cursors: drive many times the capacity through a tiny ring
  // and check the FIFO sequence survives every wrap.
  ecocap::core::SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0, next_pop = 0;
  while (next_pop < 10000) {
    while (ring.try_push(std::uint64_t(next_push))) ++next_push;
    std::uint64_t got = 0;
    while (ring.try_pop(got)) {
      ASSERT_EQ(got, next_pop);
      ++next_pop;
    }
  }
}

// The torn-read invariant: each element's payload is a pure function of its
// sequence number, so a consumer observing any mix of an old and a new
// element would fail the check. Run under TSan this is the data-race proof
// for the release/acquire cursor protocol.
TEST(SpscRing, ConcurrentStressValueIsFunctionOfIndex) {
  struct Item {
    std::uint64_t seq = 0;
    std::uint64_t payload = 0;
  };
  constexpr std::uint64_t kItems = 200000;
  const auto f = [](std::uint64_t seq) {
    return ecocap::dsp::splitmix64(seq ^ 0xabcdef12345ULL);
  };

  ecocap::core::SpscRing<Item> ring(8);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (ring.try_push(Item{i, f(i)})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t expected = 0;
  bool ordered = true, intact = true;
  while (expected < kItems) {
    Item item;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    ordered = ordered && (item.seq == expected);
    intact = intact && (item.payload == f(item.seq));
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ordered) << "ring delivered elements out of order";
  EXPECT_TRUE(intact) << "ring delivered a torn element";
}

// ---------------------------------------------------------------------------
// core::StreamClock
// ---------------------------------------------------------------------------

TEST(StreamClock, AccountsSamplesAndBlocks) {
  ecocap::core::StreamClock clock(1000.0, 100);
  EXPECT_EQ(clock.samples(), 0u);
  clock.advance(100);
  clock.advance(60);  // short final block
  EXPECT_EQ(clock.samples(), 160u);
  EXPECT_EQ(clock.blocks(), 2u);
  EXPECT_DOUBLE_EQ(clock.sim_seconds(), 0.16);
  EXPECT_GE(clock.wall_seconds(), 0.0);

  clock.restart();
  EXPECT_EQ(clock.samples(), 0u);
  EXPECT_EQ(clock.blocks(), 0u);

  EXPECT_THROW(ecocap::core::StreamClock(0.0, 100), std::invalid_argument);
  EXPECT_THROW(ecocap::core::StreamClock(1000.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Streaming channel stages vs their batch twins
// ---------------------------------------------------------------------------

Signal test_waveform(std::size_t n, std::uint64_t seed) {
  ecocap::dsp::Rng rng(seed);
  Signal x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

// Push `x` through a fresh stream in blocks of `block` and return the
// concatenated output.
template <typename MakeStream>
Signal stream_in_blocks(const Signal& x, std::size_t block, MakeStream make) {
  auto stream = make();
  Signal out;
  out.reserve(x.size());
  Signal chunk;
  for (std::size_t i = 0; i < x.size(); i += block) {
    const std::size_t n = std::min(block, x.size() - i);
    chunk.assign(x.begin() + static_cast<std::ptrdiff_t>(i),
                 x.begin() + static_cast<std::ptrdiff_t>(i + n));
    stream.push_block(chunk);
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

TEST(DownlinkStream, BitIdenticalToBatchAtAnyBlockSize) {
  const auto system = ecocap::core::default_system();
  ecocap::channel::ConcreteChannel channel(system.structure, system.channel);
  const Signal x = test_waveform(5000, 42);  // not a block-size multiple

  constexpr std::uint64_t kSeed = 777;
  ecocap::dsp::Rng batch_rng(kSeed);
  Signal ref;
  channel.downlink(x, batch_rng, ref);

  for (std::size_t block : {7u, 64u, 256u, 4096u, 5000u}) {
    const Signal got = stream_in_blocks(x, block, [&] {
      return ecocap::channel::ConcreteChannel::DownlinkStream(channel, kSeed);
    });
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i])
          << "sample " << i << " differs at block size " << block;
    }
  }
}

TEST(UplinkStream, BitIdenticalToBatchAtAnyBlockSize) {
  const auto system = ecocap::core::default_system();
  ecocap::channel::ConcreteChannel channel(system.structure, system.channel);
  const Signal x = test_waveform(5000, 43);
  const Real carrier = system.channel.concrete_resonance;
  const Real si = 0.05;

  constexpr std::uint64_t kSeed = 778;
  ecocap::dsp::Rng batch_rng(kSeed);
  Signal ref;
  channel.uplink(x, carrier, si, batch_rng, ref);

  for (std::size_t block : {7u, 64u, 256u, 4096u, 5000u}) {
    const Signal got = stream_in_blocks(x, block, [&] {
      return ecocap::channel::ConcreteChannel::UplinkStream(channel, carrier,
                                                            si, kSeed);
    });
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i])
          << "sample " << i << " differs at block size " << block;
    }
  }
}

TEST(UplinkStream, RejectsPreserveAbsoluteDelay) {
  auto system = ecocap::core::default_system();
  system.channel.preserve_absolute_delay = true;
  ecocap::channel::ConcreteChannel channel(system.structure, system.channel);
  EXPECT_THROW(ecocap::channel::ConcreteChannel::UplinkStream(channel, 230e3,
                                                              0.05, 1),
               std::invalid_argument);
}

TEST(UplinkStream, SiAmplitudeFormulaMatchesRmsDerivation) {
  const auto system = ecocap::core::default_system();
  ecocap::channel::ConcreteChannel channel(system.structure, system.channel);
  const Real rms = 0.123;
  EXPECT_DOUBLE_EQ(
      channel.uplink_si_amplitude(rms),
      system.channel.self_interference_gain * rms * std::sqrt(2.0));
}

TEST(BackscatterModulate, OffsetFormMatchesBatchAcrossSplits) {
  const Real fs = 2.0e6;
  ecocap::phy::BackscatterParams params;
  params.f_blf = 4000.0;
  const Signal incident = test_waveform(3000, 44);
  Signal switching = test_waveform(1800, 45);
  for (auto& v : switching) v = v >= 0.0 ? 1.0 : -1.0;

  Signal ref;
  ecocap::phy::backscatter_modulate(incident, switching, fs, params, ref);

  for (std::size_t block : {1u, 64u, 977u, 3000u}) {
    Signal got(incident.size(), 0.0);
    for (std::size_t i = 0; i < incident.size(); i += block) {
      const std::size_t n = std::min(block, incident.size() - i);
      ecocap::phy::backscatter_modulate(
          std::span<const Real>(incident).subspan(i, n), switching,
          std::uint64_t(i), fs, params,
          std::span<Real>(got).subspan(i, n));
    }
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i])
          << "sample " << i << " differs at block size " << block;
    }
  }
}

TEST(BackscatterModulate, EmptySwitchingIsRestState) {
  const Real fs = 2.0e6;
  ecocap::phy::BackscatterParams params;
  const Signal incident = test_waveform(64, 46);
  Signal got(incident.size(), 0.0);
  ecocap::phy::backscatter_modulate(incident, std::span<const Real>{}, 100,
                                    fs, params, got);
  const Real rest =
      0.5 * (params.reflective_gain + params.absorptive_gain) +
      0.5 * (params.reflective_gain - params.absorptive_gain) * -1.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], incident[i] * rest);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the streaming daemon
// ---------------------------------------------------------------------------

ecocap::reader::StreamingReaderConfig daemon_config(std::size_t block_size,
                                                    bool threaded) {
  ecocap::reader::StreamingReaderConfig config;
  config.stream.system = ecocap::core::default_system();
  config.stream.block_size = block_size;
  config.stream.threaded = threaded;
  config.poll_interval_s = 0.25;
  config.warmup_s = 0.5;
  return config;
}

struct DaemonRun {
  ecocap::reader::StreamingReaderStats stats;
  std::vector<float> readings;
  Signal rx_stream;  // every at-reader sample, in order
};

DaemonRun run_daemon(std::size_t block_size, bool threaded, Real sim_seconds) {
  ecocap::reader::StreamingReader daemon(daemon_config(block_size, threaded));
  DaemonRun run;
  daemon.pipeline().set_rx_tap(
      [&run](std::uint64_t, const Signal& block) {
        run.rx_stream.insert(run.rx_stream.end(), block.begin(), block.end());
      });
  run.stats = daemon.run(sim_seconds);
  std::vector<ecocap::fleet::TelemetryStore::Reading> raw;
  daemon.telemetry().range(0, ecocap::fleet::TelemetryStore::Tier::kRaw, 0,
                           std::numeric_limits<std::uint32_t>::max(), raw);
  for (const auto& r : raw) run.readings.push_back(r.value);
  return run;
}

// The ISSUE acceptance criterion: the decoded stream is bit-identical at
// block sizes {64, 256, 4096}, and threaded mode matches inline. The rx tap
// proves the at-reader waveform itself is byte-identical, which subsumes
// decode equality; the telemetry values prove the full daemon (protocol,
// supervisor, store) saw the same world.
TEST(StreamingDaemon, DecodeBitIdenticalAcrossBlockSizesAndThreads) {
  const DaemonRun ref = run_daemon(256, false, 1.0);
  ASSERT_GT(ref.stats.polls, 0u);
  ASSERT_GT(ref.stats.delivered, 0u)
      << "reference daemon never delivered a reading — scenario is broken";
  ASSERT_FALSE(ref.rx_stream.empty());

  const struct {
    std::size_t block;
    bool threaded;
  } variants[] = {{64, false}, {4096, false}, {256, true}};
  for (const auto& v : variants) {
    const DaemonRun got = run_daemon(v.block, v.threaded, 1.0);
    SCOPED_TRACE(::testing::Message()
                 << "block=" << v.block << " threaded=" << v.threaded);
    EXPECT_EQ(got.stats.delivered, ref.stats.delivered);
    EXPECT_EQ(got.stats.missed, ref.stats.missed);
    EXPECT_EQ(got.stats.frames_scheduled, ref.stats.frames_scheduled);
    ASSERT_EQ(got.readings.size(), ref.readings.size());
    for (std::size_t i = 0; i < ref.readings.size(); ++i) {
      EXPECT_EQ(got.readings[i], ref.readings[i]);
    }
    ASSERT_EQ(got.rx_stream.size(), ref.rx_stream.size());
    std::size_t mismatch = got.rx_stream.size();
    for (std::size_t i = 0; i < ref.rx_stream.size(); ++i) {
      if (got.rx_stream[i] != ref.rx_stream[i]) {
        mismatch = i;
        break;
      }
    }
    EXPECT_EQ(mismatch, got.rx_stream.size())
        << "rx stream first differs at sample " << mismatch;
  }
}

TEST(StreamingDaemon, RunsCarryStateAcrossCalls) {
  ecocap::reader::StreamingReader daemon(daemon_config(256, false));
  const auto first = daemon.run(0.5);
  const auto second = daemon.run(0.5);
  EXPECT_GT(first.polls, 0u);
  EXPECT_GT(second.polls, 0u);
  // Warmup happens once: both runs cover the same stream time, and the
  // pipeline position advances monotonically.
  EXPECT_GT(daemon.pipeline().position(),
            static_cast<std::uint64_t>(0.9 * daemon.pipeline().fs()));
  EXPECT_GT(second.real_time_factor, 0.0);
}

TEST(StreamingDaemon, MidRunFaultPlanPerturbsTheLiveStream) {
  auto config = daemon_config(256, false);
  config.supervisor.enabled = true;
  // Start the ladder at the scenario's known-good line rate so the clean
  // phase delivers; the fallback rung is what the fault should drive it to.
  config.supervisor.ladder = {ecocap::reader::LadderStep{1000.0, 4000.0, 0.0},
                              ecocap::reader::LadderStep{500.0, 4000.0, 3.01}};
  ecocap::reader::StreamFaultEvent event;
  event.at_s = 1.0;
  event.plan = ecocap::fault::FaultPlan::at_intensity(0.9);
  config.fault_events.push_back(event);

  ecocap::reader::StreamingReader daemon(config);
  std::uint64_t polls_seen = 0;
  daemon.set_poll_hook(
      [&polls_seen](std::uint64_t, bool) { ++polls_seen; });
  const auto stats = daemon.run(2.0);

  EXPECT_EQ(stats.fault_events_applied, 1u);
  EXPECT_EQ(polls_seen, stats.polls);
  EXPECT_GT(stats.delivered, 0u) << "clean phase should deliver";
  // A 0.9-intensity plan is hostile (bursts, dropouts, leaky cap, clipping):
  // the link must visibly degrade and the supervisor must react.
  EXPECT_GT(stats.missed + stats.skipped, 0u);
  const auto& injector = daemon.pipeline().node_injector();
  EXPECT_TRUE(injector.active());
  EXPECT_GT(stats.sim_seconds, 0.0);
  EXPECT_GT(stats.real_time_factor, 0.0);
}

TEST(StreamPipeline, ValidatesConfigAndSchedule) {
  ecocap::stream::StreamConfig config;
  config.system = ecocap::core::default_system();
  config.block_size = 0;
  EXPECT_THROW(ecocap::stream::StreamPipeline{config}, std::invalid_argument);

  config.block_size = 256;
  ecocap::stream::StreamPipeline pipeline(config);
  pipeline.advance_to(1000);
  EXPECT_EQ(pipeline.position(), 1000u);
  ecocap::stream::ScheduledEmission past;
  past.start = 10;  // behind the stream head
  EXPECT_THROW(pipeline.schedule_emission(std::move(past)),
               std::invalid_argument);
}

}  // namespace
