#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dsp/correlate.hpp"
#include "dsp/fast_convolve.hpp"
#include "dsp/filter_cache.hpp"
#include "dsp/fir.hpp"
#include "dsp/oscillator.hpp"
#include "dsp/rng.hpp"
#include "dsp/signal_ops.hpp"

namespace ecocap::dsp {
namespace {

constexpr Real kFs = 1.0e6;
// Acceptance bound: FFT-path outputs match the direct path within 1e-9 RMS.
constexpr Real kRmsTol = 1e-9;

Signal random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Signal x(n);
  for (Real& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

Real rms_error(std::span<const Real> a, std::span<const Real> b) {
  EXPECT_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  Real acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Real d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<Real>(a.size()));
}

TEST(FastConvolve, EmptyInputsYieldEmpty) {
  const Signal x = random_signal(64, 1);
  EXPECT_TRUE(convolve_full(Signal{}, x).empty());
  EXPECT_TRUE(convolve_full(x, Signal{}).empty());
  EXPECT_TRUE(convolve_full_fft(Signal{}, x).empty());
  EXPECT_TRUE(convolve_full_direct(Signal{}, x).empty());
}

TEST(FastConvolve, ImpulseKernelReproducesSignal) {
  const Signal x = random_signal(1000, 2);
  const Signal h{1.0};
  const Signal y = convolve_full_fft(x, h);
  ASSERT_EQ(y.size(), x.size());
  EXPECT_LT(rms_error(y, x), kRmsTol);
}

TEST(FastConvolve, DelayedImpulseShifts) {
  const Signal x = random_signal(777, 3);
  Signal h(33, 0.0);
  h[10] = 1.0;
  const Signal y = convolve_full_fft(x, h);
  ASSERT_EQ(y.size(), x.size() + h.size() - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i + 10], x[i], 1e-9);
  }
}

struct ConvCase {
  std::size_t n;
  std::size_t m;
};

class ConvEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvEquivalence, FftMatchesDirect) {
  const auto [n, m] = GetParam();
  const Signal x = random_signal(n, 17 * n + m);
  const Signal h = random_signal(m, 29 * m + n);
  const Signal direct = convolve_full_direct(x, h);
  const Signal fft = convolve_full_fft(x, h);
  ASSERT_EQ(direct.size(), fft.size());
  EXPECT_LT(rms_error(direct, fft), kRmsTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalence,
    ::testing::Values(ConvCase{1, 1}, ConvCase{5, 3}, ConvCase{64, 64},
                      ConvCase{1000, 31},     // odd tap count
                      ConvCase{1023, 129},    // odd signal length
                      ConvCase{4096, 513},
                      ConvCase{31, 257},      // h longer than x
                      ConvCase{2, 1024},      // h much longer than x
                      ConvCase{32768, 129})); // the bench design point

TEST(FastConvolve, StepAndToneInputs) {
  const Signal h = design_lowpass(kFs, 50.0e3, 129);
  Signal step(2000, 1.0);
  const Signal tone_x = tone(kFs, 30.0e3, 2000, 1.0);
  EXPECT_LT(rms_error(convolve_full_direct(step, h), convolve_full_fft(step, h)),
            kRmsTol);
  EXPECT_LT(
      rms_error(convolve_full_direct(tone_x, h), convolve_full_fft(tone_x, h)),
      kRmsTol);
}

TEST(FastConvolve, ComplexMatchesPerRail) {
  const Signal h = design_lowpass(kFs, 50.0e3, 101);
  const Signal re = random_signal(3000, 7);
  const Signal im = random_signal(3000, 8);
  ComplexSignal z(re.size());
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = Complex(re[i], im[i]);

  const ComplexSignal zy = convolve_full_fft(std::span<const Complex>(z), h);
  const Signal ry = convolve_full_direct(re, h);
  const Signal iy = convolve_full_direct(im, h);
  ASSERT_EQ(zy.size(), ry.size());
  Real acc = 0.0;
  for (std::size_t i = 0; i < zy.size(); ++i) {
    acc += std::norm(zy[i] - Complex(ry[i], iy[i]));
  }
  EXPECT_LT(std::sqrt(acc / static_cast<Real>(zy.size())), kRmsTol);
}

TEST(FastConvolve, ZeroPhaseComplexAlignsWithReal) {
  const Signal h = design_lowpass(kFs, 50.0e3, 101);
  const Signal re = random_signal(5000, 11);
  const Signal im = random_signal(5000, 12);
  ComplexSignal z(re.size());
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = Complex(re[i], im[i]);

  const ComplexSignal zy = filter_zero_phase(h, z);
  const Signal ry = filter_zero_phase(h, re);
  const Signal iy = filter_zero_phase(h, im);
  ASSERT_EQ(zy.size(), z.size());
  for (std::size_t i = 0; i < zy.size(); ++i) {
    EXPECT_NEAR(zy[i].real(), ry[i], 1e-9);
    EXPECT_NEAR(zy[i].imag(), iy[i], 1e-9);
  }
}

/// The seed's zero-phase implementation: stream through a FirFilter, feed
/// `delay` trailing zeros, and realign. The rewritten single-pass version
/// must reproduce it.
Signal zero_phase_reference(const Signal& coefficients,
                            std::span<const Real> x) {
  FirFilter f(coefficients);
  const std::size_t delay = (coefficients.size() - 1) / 2;
  Signal out(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size() + delay; ++i) {
    const Real in = (i < x.size()) ? x[i] : 0.0;
    const Real y = f.process(in);
    if (i >= delay) out[i - delay] = y;
  }
  return out;
}

TEST(FastConvolve, ZeroPhaseMatchesSeedReference) {
  for (const std::size_t taps : {15UL, 101UL, 129UL}) {
    const Signal h = design_lowpass(kFs, 50.0e3, taps);
    const Signal x = random_signal(6000, taps);
    const Signal ref = zero_phase_reference(h, x);
    const Signal got = filter_zero_phase(h, x);
    ASSERT_EQ(ref.size(), got.size());
    EXPECT_LT(rms_error(ref, got), kRmsTol) << "taps=" << taps;
  }
}

TEST(FastConvolve, CorrelateFftMatchesDirect) {
  const Signal x = random_signal(10000, 21);
  const Signal h = random_signal(513, 22);
  // Direct sliding dot product (the seed path).
  const std::size_t out_len = x.size() - h.size() + 1;
  Signal direct(out_len, 0.0);
  for (std::size_t k = 0; k < out_len; ++k) {
    Real acc = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i) acc += x[k + i] * h[i];
    direct[k] = acc;
  }
  const Signal fft = correlate_valid_fft(x, h);
  ASSERT_EQ(fft.size(), out_len);
  EXPECT_LT(rms_error(direct, fft), kRmsTol);
  // And the public entry point (whichever path it picks) agrees too.
  EXPECT_LT(rms_error(correlate_valid(x, h), direct), kRmsTol);
}

TEST(FastConvolve, CorrelateEdgeCases) {
  const Signal x = random_signal(100, 31);
  EXPECT_TRUE(correlate_valid_fft(x, Signal{}).empty());
  EXPECT_TRUE(correlate_valid_fft(Signal(10, 1.0), x).empty());  // h > x
  // h.size() == x.size(): a single lag.
  const Signal c = correlate_valid_fft(x, x);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0], energy(x), 1e-7);
}

TEST(FastConvolve, StreamingFirSplitAcrossCalls) {
  // A batch big enough to take the FFT path, chopped into uneven pieces
  // (forcing both the FFT and the direct fallback across call boundaries),
  // must match the pure scalar path sample for sample.
  const Signal h = design_lowpass(kFs, 50.0e3, 129);
  const Signal x = random_signal(8192, 41);

  FirFilter scalar_f(h);
  Signal scalar_out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) scalar_out[i] = scalar_f.process(x[i]);

  FirFilter split_f(h);
  Signal split_out;
  const std::size_t chunks[] = {1, 63, 4000, 129, 2500, 1499};
  std::size_t pos = 0;
  for (const std::size_t c : chunks) {
    const std::size_t take = std::min(c, x.size() - pos);
    const Signal piece = split_f.process(
        std::span<const Real>(x.data() + pos, take));
    split_out.insert(split_out.end(), piece.begin(), piece.end());
    pos += take;
  }
  ASSERT_EQ(pos, x.size());
  ASSERT_EQ(split_out.size(), scalar_out.size());
  EXPECT_LT(rms_error(scalar_out, split_out), kRmsTol);

  // Streaming must keep working scalar-wise after a batch call.
  const Real next_scalar = scalar_f.process(0.5);
  const Real next_split = split_f.process(0.5);
  EXPECT_NEAR(next_scalar, next_split, 1e-9);
}

TEST(FastConvolve, MinTapsEnvOverridesDispatch) {
  // The override forces the FFT path at/above the given tap count and the
  // direct path below it, regardless of the cost model.
  ASSERT_EQ(setenv("ECOCAP_FFT_CONV_MIN_TAPS", "64", 1), 0);
  EXPECT_FALSE(use_fft_convolution(1 << 15, 63));
  EXPECT_TRUE(use_fft_convolution(1 << 15, 64));
  EXPECT_TRUE(use_fft_convolution(8, 64));  // even when clearly slower
  ASSERT_EQ(setenv("ECOCAP_FFT_CONV_MIN_TAPS", "0", 1), 0);
  EXPECT_TRUE(use_fft_convolution(16, 1));
  ASSERT_EQ(unsetenv("ECOCAP_FFT_CONV_MIN_TAPS"), 0);
  EXPECT_EQ(fft_conv_min_taps_override(), -1);
  // Cost model: big jobs go FFT, tiny kernels stay direct.
  EXPECT_TRUE(use_fft_convolution(1 << 15, 129));
  EXPECT_FALSE(use_fft_convolution(1 << 15, 3));
}

TEST(FilterCache, SameKeyReturnsSameEntry) {
  FilterCache cache;
  const auto a = cache.lowpass(kFs, 50.0e3, 129);
  const auto b = cache.lowpass(kFs, 50.0e3, 129);
  EXPECT_EQ(a.get(), b.get());
  const Signal direct = design_lowpass(kFs, 50.0e3, 129);
  ASSERT_EQ(a->size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) EXPECT_EQ((*a)[i], direct[i]);

  // Different parameters are different entries.
  EXPECT_NE(a.get(), cache.lowpass(kFs, 60.0e3, 129).get());
  EXPECT_NE(a.get(), cache.lowpass(kFs, 50.0e3, 131).get());
  EXPECT_NE(a.get(),
            cache.lowpass(kFs, 50.0e3, 129, WindowKind::kBlackman).get());
  EXPECT_EQ(cache.size(), 4u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(a->size(), direct.size());  // outstanding pointers stay valid
}

TEST(FilterCache, KindsAndResonatorAreDistinct) {
  FilterCache cache;
  const auto lo = cache.lowpass(kFs, 50.0e3, 101);
  const auto hi = cache.highpass(kFs, 50.0e3, 101);
  EXPECT_NE(lo.get(), hi.get());
  const auto bp = cache.bandpass(kFs, 40.0e3, 60.0e3, 101);
  const auto bs = cache.bandstop(kFs, 40.0e3, 60.0e3, 101);
  EXPECT_NE(bp.get(), bs.get());

  const auto res = cache.bandpass_resonator(2.0e6, 230.0e3, 10.0);
  EXPECT_EQ(res.get(), cache.bandpass_resonator(2.0e6, 230.0e3, 10.0).get());
  Biquad fresh = Biquad::bandpass(2.0e6, 230.0e3, 10.0);
  EXPECT_EQ(res->peak_gain, fresh.magnitude_at(2.0e6, 230.0e3));
}

TEST(FilterCache, EightThreadsHammeringOneKey) {
  FilterCache cache;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<const Signal*> first(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        const auto h = cache.lowpass(kFs, 50.0e3, 129);
        if (!first[t]) first[t] = h.get();
        // Every hit must be the one shared design.
        if (h.get() != first[t] || h->size() != 129) {
          first[t] = nullptr;  // poison: the expectation below fails
          return;
        }
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();
  ASSERT_NE(first[0], nullptr);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(first[t], first[0]);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace ecocap::dsp
