// Scenario-engine regression suite: parses the shipped .scn scripts, pins
// each scenario's aggregate outcome against a golden vector in
// tests/golden/scenarios/, and drives the crash-safety contract — every
// mode's run must be bit-identical when run twice, and byte-identical when
// killed at the midpoint and resumed from its checkpoint. Behavioral pins
// assert the physics: progressive damage walks the health grades in order,
// a concert surge drives PAO to grade F, coordination beats uncoordinated
// readers, and a mobile route actually delivers readings.
//
// Regenerating after an intentional change:
//   ./test_scenario --regen              # rewrites tests/golden/scenarios/
// then commit the updated files with the change that caused them. The
// outcomes are single-stream deterministic, so they hold at any
// ECOCAP_THREADS (CI runs this suite at 1 and 8).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "channel/snr_models.hpp"
#include "channel/structures.hpp"
#include "fault/fault.hpp"
#include "scenario/engine.hpp"
#include "scenario/script.hpp"

#include "golden_util.hpp"

#ifndef ECOCAP_SCENARIO_DIR
#error "ECOCAP_SCENARIO_DIR must point at the shipped scenarios/ directory"
#endif
#ifndef ECOCAP_GOLDEN_DIR
#error "ECOCAP_GOLDEN_DIR must point at tests/golden/scenarios"
#endif

namespace ecocap::scenario {
namespace {

ScenarioScript load_script(const std::string& file) {
  return ScenarioScript::load(std::string(ECOCAP_SCENARIO_DIR) + "/" + file);
}

/// Exact (bit-level) outcome equality: the determinism and kill/resume
/// contracts promise nothing weaker.
void expect_outcomes_identical(const ScenarioOutcome& a,
                               const ScenarioOutcome& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.grade_path, b.grade_path);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.trace[i]),
              std::bit_cast<std::uint64_t>(b.trace[i]))
        << "trace[" << i << "] diverged";
  }
  ASSERT_EQ(a.scalars.size(), b.scalars.size());
  for (const auto& [key, value] : a.scalars) {
    const auto it = b.scalars.find(key);
    ASSERT_NE(it, b.scalars.end()) << "missing scalar " << key;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(value),
              std::bit_cast<std::uint64_t>(it->second))
        << "scalar " << key << " diverged";
  }
}

/// Golden pin: hash the trace, record every scalar plus a grade-path code
/// (base-6 digits, A=0..F=5, oldest grade most significant).
void check_scenario_golden(const std::string& name,
                           const ScenarioOutcome& out) {
  std::map<std::string, double> scalars(out.scalars.begin(),
                                        out.scalars.end());
  double path_code = 0.0;
  for (const char g : out.grade_path) path_code = path_code * 6.0 + (g - 'A');
  scalars["grade_path_code"] = path_code;
  golden::check_golden(ECOCAP_GOLDEN_DIR, name, out.trace, scalars);
}

std::string checkpoint_path(const std::string& tag) {
  return std::string(::testing::TempDir()) + "ecocap_scn_" + tag + ".ck";
}

/// Kill-at-midpoint contract: a run stopped (with a checkpoint) after
/// `midpoint` units and resumed must match the uninterrupted run bit for
/// bit.
void expect_kill_resume_identical(const ScenarioScript& script,
                                  std::size_t midpoint,
                                  const std::string& tag) {
  const ScenarioOutcome full = ScenarioEngine(script).run();

  RunControl control;
  control.checkpoint_path = checkpoint_path(tag);
  control.stop_after_units = midpoint;
  const ScenarioOutcome killed = ScenarioEngine(script, control).run();
  EXPECT_FALSE(killed.completed);

  RunControl resume_control;
  resume_control.checkpoint_path = control.checkpoint_path;
  const ScenarioOutcome resumed =
      ScenarioEngine(script, resume_control).resume();
  EXPECT_TRUE(resumed.completed);
  expect_outcomes_identical(full, resumed);
  std::remove(control.checkpoint_path.c_str());
}

// --- script parser ----------------------------------------------------------

TEST(ScenarioScript, ParsesGlobalsEventsAndComments) {
  const auto s = ScenarioScript::parse(
      "# a comment\n"
      "scenario demo\n"
      "mode structural\n"
      "days 3  # trailing comment\n"
      "seed 99\n"
      "event seismic at_day=1 pga=0.5 duration_hours=2 stiffness_loss=0.03\n"
      "event surge at_day=0.5 factor=8 duration_hours=1\n");
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.mode, Mode::kStructural);
  EXPECT_EQ(s.days, 3.0);
  EXPECT_EQ(s.seed, 99u);
  ASSERT_EQ(s.seismic.size(), 1u);
  EXPECT_EQ(s.seismic[0].pga, 0.5);
  EXPECT_EQ(s.seismic[0].stiffness_loss, 0.03);
  ASSERT_EQ(s.surges.size(), 1u);
  EXPECT_EQ(s.surges[0].factor, 8.0);
}

TEST(ScenarioScript, RejectsUnknownDirectiveWithLineNumber) {
  try {
    ScenarioScript::parse("scenario x\nbogus 1\n");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(ScenarioScript, RejectsUnknownEventKeyAndMissingName) {
  EXPECT_THROW(
      ScenarioScript::parse("scenario x\nevent surge wat=1\n"),
      std::runtime_error);
  EXPECT_THROW(ScenarioScript::parse("days 2\n"), std::runtime_error);
  EXPECT_THROW(
      ScenarioScript::parse("scenario x\nmode mobile\n"),
      std::runtime_error);  // mobile without stops
}

TEST(ScenarioScript, ShippedScriptsParse) {
  EXPECT_EQ(load_script("seismic_retrofit.scn").mode, Mode::kStructural);
  EXPECT_EQ(load_script("concert_surge.scn").mode, Mode::kStructural);
  EXPECT_EQ(load_script("drive_by.scn").mode, Mode::kMobile);
  EXPECT_EQ(load_script("dual_reader.scn").mode, Mode::kMultiReader);
}

// --- pure timeline semantics ------------------------------------------------

TEST(ScenarioTimeline, StiffnessRampsAndCompounds) {
  ScenarioScript s;
  s.name = "t";
  s.seismic.push_back(SeismicEvent{1.0, 24.0, 0.5, 0.10});
  s.cracks.push_back(CrackEvent{3.0, 2.0, 0.05});
  EXPECT_EQ(stiffness_at(s, 0.5), 1.0);           // before anything
  EXPECT_NEAR(stiffness_at(s, 1.5), 0.95, 1e-12); // half the ramp
  EXPECT_NEAR(stiffness_at(s, 2.5), 0.90, 1e-12); // full seismic loss
  // Crack growth compounds on top and freezes at window end.
  const Real k5 = stiffness_at(s, 5.0);
  EXPECT_NEAR(k5, 0.90 * std::exp(2.0 * std::log(0.95)), 1e-12);
  EXPECT_EQ(stiffness_at(s, 6.0), k5);
  // Identity for an empty script — the bit-identity contract upstream.
  ScenarioScript empty;
  empty.name = "e";
  EXPECT_EQ(stiffness_at(empty, 10.0), 1.0);
  EXPECT_EQ(occupancy_factor_at(empty, 10.0), 1.0);
  EXPECT_EQ(ground_accel_at(empty, 10.0), 0.0);
  EXPECT_TRUE(poll_fault_at(empty, 10.0).empty());
}

TEST(ScenarioTimeline, GradesFollowStiffnessThresholds) {
  EXPECT_EQ(structural_grade(1.00), 'A');
  EXPECT_EQ(structural_grade(0.97), 'B');
  EXPECT_EQ(structural_grade(0.93), 'C');
  EXPECT_EQ(structural_grade(0.85), 'D');
  EXPECT_EQ(structural_grade(0.70), 'E');
  EXPECT_EQ(structural_grade(0.60), 'F');
  EXPECT_EQ(worse_grade('B', 'D'), 'D');
  EXPECT_EQ(worse_grade('C', 'A'), 'C');
}

TEST(ScenarioTimeline, PollFaultMergesWindowsAndShaking) {
  ScenarioScript s;
  s.name = "t";
  s.faults.push_back(FaultWindow{0.0, 24.0, 0.4});
  s.seismic.push_back(SeismicEvent{0.5, 12.0, 1.0, 0.0});
  const auto during = poll_fault_at(s, 0.6);
  const auto base = fault::FaultPlan::at_intensity(0.4);
  // Shaking adds impulsive scatter on top of the window's plan.
  EXPECT_GT(during.channel.spike_rate_hz, base.channel.spike_rate_hz);
  EXPECT_GE(during.node.brownout_prob, base.node.brownout_prob);
  EXPECT_TRUE(poll_fault_at(s, 2.0).empty());  // everything over
}

// --- fault-plan combinators -------------------------------------------------

TEST(FaultPlanCombinators, SeismicShakingScalesAndMaxOfIsFieldwise) {
  EXPECT_TRUE(fault::FaultPlan::seismic_shaking(0.0).empty());
  const auto weak = fault::FaultPlan::seismic_shaking(0.2);
  const auto strong = fault::FaultPlan::seismic_shaking(1.0);
  EXPECT_LT(weak.channel.spike_rate_hz, strong.channel.spike_rate_hz);
  EXPECT_LT(weak.node.brownout_prob, strong.node.brownout_prob);

  const auto site = fault::FaultPlan::at_intensity(0.5);
  const auto merged = fault::FaultPlan::max_of(site, strong);
  EXPECT_EQ(merged.channel.burst_prob, site.channel.burst_prob);
  EXPECT_EQ(merged.channel.spike_rate_hz, strong.channel.spike_rate_hz);
  EXPECT_EQ(merged.node.bit_flip_prob, site.node.bit_flip_prob);
  // max_of with the empty plan is the identity.
  const auto same = fault::FaultPlan::max_of(site, fault::FaultPlan{});
  EXPECT_EQ(same.channel.dropout_prob, site.channel.dropout_prob);
  EXPECT_EQ(same.node.cap_leak_amps, site.node.cap_leak_amps);
}

// --- inter-reader interference model ----------------------------------------

TEST(ReaderInterference, RejectionGrowsWithOffsetAndSaturates) {
  channel::ReaderInterference m;
  EXPECT_EQ(m.carrier_rejection_db(0.0), 0.0);
  EXPECT_EQ(m.carrier_rejection_db(m.rx_notch_bw_hz), 0.0);
  const Real r1 = m.carrier_rejection_db(5.0e3);
  const Real r2 = m.carrier_rejection_db(50.0e3);
  EXPECT_GT(r1, 0.0);
  EXPECT_GT(r2, r1);
  EXPECT_EQ(m.carrier_rejection_db(1.0e9), m.max_rejection_db);
}

TEST(ReaderInterference, CirImprovesWithSeparationAndWorsensWithDepth) {
  channel::ReaderInterference m;
  const auto wall = channel::structures::s3_common_wall();
  const Real near_sep = m.cir_db(wall, 1.0, 2.0, 2000.0);
  const Real far_sep = m.cir_db(wall, 1.0, 8.0, 2000.0);
  EXPECT_GT(far_sep, near_sep);  // distant interferer attenuates more
  const Real shallow = m.cir_db(wall, 0.5, 6.0, 2000.0);
  const Real deep = m.cir_db(wall, 2.5, 6.0, 2000.0);
  EXPECT_GT(shallow, deep);  // deep node's backscatter is weaker
}

TEST(ReaderInterference, SinrCombinesPowerWise) {
  // Equal SNR and CIR cost exactly 3 dB; a dominant impairment wins.
  EXPECT_NEAR(channel::sinr_db(10.0, 10.0), 10.0 - 10.0 * std::log10(2.0),
              1e-9);
  EXPECT_NEAR(channel::sinr_db(30.0, 0.0), 0.0, 0.05);
  EXPECT_LT(channel::sinr_db(10.0, -5.0), -4.9);
}

// --- golden pins (one per shipped scenario) ---------------------------------

TEST(ScenarioGolden, SeismicRetrofit) {
  check_scenario_golden("seismic_retrofit",
                        ScenarioEngine(load_script("seismic_retrofit.scn")).run());
}

TEST(ScenarioGolden, ConcertSurge) {
  check_scenario_golden("concert_surge",
                        ScenarioEngine(load_script("concert_surge.scn")).run());
}

TEST(ScenarioGolden, DriveBy) {
  check_scenario_golden("drive_by",
                        ScenarioEngine(load_script("drive_by.scn")).run());
}

TEST(ScenarioGolden, DualReader) {
  check_scenario_golden("dual_reader",
                        ScenarioEngine(load_script("dual_reader.scn")).run());
}

// --- determinism ------------------------------------------------------------

TEST(ScenarioDeterminism, StructuralRunTwiceIsBitIdentical) {
  const auto script = load_script("seismic_retrofit.scn");
  expect_outcomes_identical(ScenarioEngine(script).run(),
                            ScenarioEngine(script).run());
}

TEST(ScenarioDeterminism, MobileRunTwiceIsBitIdentical) {
  const auto script = load_script("drive_by.scn");
  expect_outcomes_identical(ScenarioEngine(script).run(),
                            ScenarioEngine(script).run());
}

TEST(ScenarioDeterminism, MultiReaderRunTwiceIsBitIdentical) {
  const auto script = load_script("dual_reader.scn");
  expect_outcomes_identical(ScenarioEngine(script).run(),
                            ScenarioEngine(script).run());
}

// --- kill-at-midpoint resume ------------------------------------------------

TEST(ScenarioResume, StructuralKillAtMidpointResumesBitIdentical) {
  const auto script = load_script("seismic_retrofit.scn");
  const auto steps = static_cast<std::size_t>(script.days * 24.0 * 60.0 /
                                              script.step_minutes);
  expect_kill_resume_identical(script, steps / 2, "structural");
}

TEST(ScenarioResume, MobileKillMidRouteResumesBitIdentical) {
  const auto script = load_script("drive_by.scn");
  ASSERT_GE(script.route.size(), 3u);
  expect_kill_resume_identical(script, script.route.size() / 2, "mobile");
}

TEST(ScenarioResume, MultiReaderKillMidSchemeResumesBitIdentical) {
  const auto script = load_script("dual_reader.scn");
  // Land mid-scheme (not on a boundary) so the session state itself must
  // round-trip through the checkpoint.
  const auto midpoint =
      static_cast<std::size_t>(script.passes) * 3 / 2 + 1;
  expect_kill_resume_identical(script, midpoint, "multi_reader");
}

TEST(ScenarioResume, RejectsCheckpointFromDifferentScript) {
  auto script = load_script("dual_reader.scn");
  RunControl control;
  control.checkpoint_path = checkpoint_path("mismatch");
  control.stop_after_units = 5;
  EXPECT_FALSE(ScenarioEngine(script, control).run().completed);

  auto other = script;
  other.seed += 1;
  RunControl resume_control;
  resume_control.checkpoint_path = control.checkpoint_path;
  EXPECT_THROW(ScenarioEngine(other, resume_control).resume(),
               std::runtime_error);
  std::remove(control.checkpoint_path.c_str());
}

// --- behavioral pins --------------------------------------------------------

TEST(ScenarioBehavior, SeismicScenarioWalksGradesInOrder) {
  const auto out = ScenarioEngine(load_script("seismic_retrofit.scn")).run();
  // The combined grade must visit A, B, C, D as a subsequence — the
  // progressive-damage story the scenario scripts.
  const std::string& path = out.grade_path;
  std::size_t pos = 0;
  for (const char g : std::string("ABCD")) {
    pos = path.find(g, pos);
    ASSERT_NE(pos, std::string::npos)
        << "grade path '" << path << "' never reaches " << g;
  }
  // Grades only ever get worse in this scenario (monotone damage, light
  // traffic): the path is exactly the sorted ladder prefix.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GT(path[i], path[i - 1]) << "grade path '" << path << "' regressed";
  }
  EXPECT_LT(out.scalars.at("final_stiffness"), 0.85);
  // The modal assessor must independently flag the damage.
  EXPECT_EQ(out.scalars.at("modal_damaged"), 1.0);
  EXPECT_LT(out.scalars.at("modal_frequency_shift"), -0.02);
}

TEST(ScenarioBehavior, ConcertSurgeDrivesPaoToF) {
  const auto out = ScenarioEngine(load_script("concert_surge.scn")).run();
  // The surge must push the worst section past every Table 2 threshold
  // (HK grade F below 0.52 m^2/ped) and trip the PAO structural limit.
  EXPECT_LT(out.scalars.at("min_pao"), 0.52);
  EXPECT_NE(out.grade_path.find('F'), std::string::npos);
  EXPECT_GT(out.scalars.at("limit_violations"), 0.0);
  // The structure itself stays intact: damage comes from load, not cracks.
  EXPECT_EQ(out.scalars.at("final_stiffness"), 1.0);
}

TEST(ScenarioBehavior, CoordinationBeatsUncoordinatedReaders) {
  const auto out = ScenarioEngine(load_script("dual_reader.scn")).run();
  const Real unc = out.scalars.at("delivery_uncoordinated");
  EXPECT_GT(out.scalars.at("delivery_tdma"), unc);
  EXPECT_GT(out.scalars.at("delivery_lbt"), unc);
  // Coordination must actually deliver something meaningful.
  EXPECT_GT(out.scalars.at("delivery_tdma"), 0.25);
  EXPECT_GT(out.scalars.at("delivery_lbt"), 0.25);
}

TEST(ScenarioBehavior, DriveByRespectsPerStopLinkBudgets) {
  const auto script = load_script("drive_by.scn");
  const auto out = ScenarioEngine(script).run();
  int total_nodes = 0;
  for (const auto& stop : script.route) total_nodes += stop.nodes;
  // The power-starved stop must leave at least one capsule dark, but the
  // route as a whole must deliver.
  EXPECT_LT(out.scalars.at("reachable_nodes"),
            static_cast<Real>(total_nodes));
  EXPECT_GT(out.scalars.at("reachable_nodes"), 0.0);
  EXPECT_GT(out.scalars.at("delivered"), 0.0);
  EXPECT_GT(out.scalars.at("store_appends"), 0.0);
  // Every successful sensor read lands in the telemetry store exactly once.
  EXPECT_EQ(out.scalars.at("store_appends"), out.scalars.at("read_ok"));
}

}  // namespace
}  // namespace ecocap::scenario

int main(int argc, char** argv) {
  return ecocap::golden::golden_test_main(argc, argv);
}
