#include <gtest/gtest.h>

#include <cmath>

#include "wave/body_wave.hpp"
#include "wave/boundary.hpp"
#include "wave/material.hpp"

namespace ecocap::wave {
namespace {

TEST(BodyWave, LameFromYoungs) {
  // Steel-ish: E = 200 GPa, nu = 0.3.
  const LameParameters p = lame_from_youngs(200.0e9, 0.30);
  EXPECT_NEAR(p.mu, 76.9e9, 0.1e9);
  EXPECT_NEAR(p.lambda, 115.4e9, 0.2e9);
}

TEST(BodyWave, VelocityRelations) {
  // Appendix A Eqs. 8/10 against hand-computed values.
  const LameParameters p{10.0e9, 15.0e9};
  EXPECT_NEAR(p_wave_velocity(p, 2500.0), std::sqrt(40.0e9 / 2500.0), 1e-6);
  EXPECT_NEAR(s_wave_velocity(p, 2500.0), std::sqrt(15.0e9 / 2500.0), 1e-6);
}

TEST(BodyWave, PFasterThanS) {
  // For any valid solid, Cp > Cs (paper: S ~40% slower).
  for (const auto& m : materials::table1_concretes()) {
    EXPECT_GT(m.cp, m.cs) << m.name;
    EXPECT_GT(m.cs, 0.0) << m.name;
  }
}

TEST(BodyWave, InvalidInputsThrow) {
  EXPECT_THROW((void)lame_from_youngs(-1.0, 0.2), std::invalid_argument);
  EXPECT_THROW((void)lame_from_youngs(1e9, 0.5), std::invalid_argument);
  EXPECT_THROW((void)p_wave_velocity(LameParameters{1e9, 1e9}, 0.0),
               std::invalid_argument);
}

TEST(Materials, Table1MixTotalsMatchDensity) {
  // Fresh density = sum of mix proportions (Table 1 columns).
  const Material nc = materials::normal_concrete();
  EXPECT_NEAR(nc.mix.total(), 2309.0, 0.5);
  EXPECT_NEAR(nc.density, nc.mix.total(), 1e-9);

  const Material uhpc = materials::uhpc();
  EXPECT_NEAR(uhpc.mix.total(), 2348.0, 0.5);

  const Material uhpfrc = materials::uhpfrc();
  EXPECT_NEAR(uhpfrc.mix.total(), 2757.0, 0.5);
}

TEST(Materials, Table1Properties) {
  const Material nc = materials::normal_concrete();
  EXPECT_NEAR(nc.compressive_strength, 54.1e6, 1.0);
  EXPECT_NEAR(nc.youngs_modulus, 27.8e9, 1.0);
  EXPECT_NEAR(nc.poisson_ratio, 0.18, 1e-12);
  EXPECT_NEAR(nc.peak_strain, 0.00263, 1e-8);

  const Material uhpfrc = materials::uhpfrc();
  EXPECT_NEAR(uhpfrc.compressive_strength, 215.0e6, 1.0);
  EXPECT_GT(uhpfrc.compressive_strength,
            materials::uhpc().compressive_strength);
}

TEST(Materials, ReferenceConcreteVelocities) {
  const Material ref = materials::reference_concrete();
  EXPECT_DOUBLE_EQ(ref.cp, 3338.0);  // [41] in the paper
  EXPECT_DOUBLE_EQ(ref.cs, 1941.0);
  // S is ~40% slower than P (paper §3.1).
  EXPECT_NEAR(ref.cs / ref.cp, 0.58, 0.02);
}

TEST(Materials, DerivedConcreteVelocitiesPlausible) {
  // Concrete P velocities derived from Table 1 elastic constants should be
  // in the 3-5.5 km/s window reported for real mixes.
  for (const auto& m : materials::table1_concretes()) {
    EXPECT_GT(m.cp, 3000.0) << m.name;
    EXPECT_LT(m.cp, 5600.0) << m.name;
  }
}

TEST(Materials, FluidsCarryNoShear) {
  EXPECT_TRUE(materials::air().is_fluid());
  EXPECT_TRUE(materials::water().is_fluid());
  EXPECT_FALSE(materials::normal_concrete().is_fluid());
  EXPECT_EQ(materials::water().impedance(WaveMode::kSecondary), 0.0);
}

TEST(Materials, ImpedanceIsRhoC) {
  const Material ref = materials::reference_concrete();
  EXPECT_NEAR(ref.impedance(WaveMode::kPrimary), 2300.0 * 3338.0, 1.0);
  EXPECT_NEAR(ref.impedance(WaveMode::kSecondary), 2300.0 * 1941.0, 1.0);
}

TEST(Materials, LameFromVelocitiesRoundTrip) {
  const Material ref = materials::reference_concrete();
  const LameParameters p = ref.lame_from_velocities();
  EXPECT_NEAR(p_wave_velocity(p, ref.density), ref.cp, 1e-6);
  EXPECT_NEAR(s_wave_velocity(p, ref.density), ref.cs, 1e-6);
}

TEST(Boundary, ConcreteAirNearTotalReflection) {
  // Paper Eq. 1: Z_con = 4.66e6, Z_air = 4.15e2 -> R = 99.98%.
  const Real r = reflection_coefficient(materials::reference_concrete(),
                                        materials::air());
  EXPECT_GT(r, 0.999);
  EXPECT_NEAR(r, 0.9998, 5e-4);
}

TEST(Boundary, PlaConcreteTransmitsMostEnergy) {
  // Paper: ~67% of P-wave energy crosses the PLA/concrete interface
  // (R ~ 33% amplitude). Our PLA calibration keeps this within a few
  // percent.
  const Real t = energy_transmittance(materials::pla(),
                                      materials::reference_concrete());
  EXPECT_GT(t, 0.55);
  EXPECT_LT(t, 0.85);
}

TEST(Boundary, SymmetricAndBounded) {
  const Material a = materials::normal_concrete();
  const Material b = materials::water();
  const Real r_ab = reflection_coefficient(a, b);
  const Real r_ba = reflection_coefficient(b, a);
  EXPECT_NEAR(r_ab, -r_ba, 1e-12);
  EXPECT_LE(std::abs(r_ab), 1.0);
  EXPECT_NEAR(energy_reflectance(a, b) + energy_transmittance(a, b), 1.0,
              1e-12);
}

TEST(Boundary, IdenticalMediaNoReflection) {
  const Material a = materials::uhpc();
  EXPECT_NEAR(reflection_coefficient(a, a), 0.0, 1e-12);
  EXPECT_NEAR(energy_transmittance(a, a), 1.0, 1e-12);
}

/// Property: energy conservation at every interface pair in the catalog.
class BoundaryPairs
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BoundaryPairs, EnergyConserved) {
  const std::vector<Material> mats = {
      materials::reference_concrete(), materials::normal_concrete(),
      materials::uhpc(),              materials::uhpfrc(),
      materials::pla(),               materials::air(),
      materials::water(),             materials::steel()};
  const Material& a = mats[static_cast<std::size_t>(GetParam().first)];
  const Material& b = mats[static_cast<std::size_t>(GetParam().second)];
  const Real refl = energy_reflectance(a, b);
  const Real trans = energy_transmittance(a, b);
  EXPECT_GE(refl, 0.0);
  EXPECT_LE(refl, 1.0);
  EXPECT_NEAR(refl + trans, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, BoundaryPairs,
    ::testing::Values(std::pair{0, 5}, std::pair{0, 4}, std::pair{1, 6},
                      std::pair{2, 7}, std::pair{3, 5}, std::pair{4, 0},
                      std::pair{6, 1}, std::pair{7, 5}));

}  // namespace
}  // namespace ecocap::wave
