// Wall inventory: a maintenance crew attaches the reader to a 20 cm
// common wall (S3) cast with eight EcoCapsules at unknown positions. The
// TDMA inventory collects every reachable node's humidity and strain,
// then staggers their backscatter link frequencies for the next visit.

#include <cstdio>

#include "core/inventory_session.hpp"

using namespace ecocap;

int main() {
  core::InventorySession::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  cfg.tx_voltage = 200.0;  // Fig. 12: reaches ~5 m on this wall
  cfg.inventory.q = 3;     // 8 slots per round
  cfg.inventory.max_rounds = 16;
  cfg.seed = 7;
  core::InventorySession session(cfg);

  // Cast eight capsules along the wall; the two farthest exceed the
  // 200 V power-up range on purpose.
  for (int i = 0; i < 8; ++i) {
    core::DeployedNode n;
    n.node_id = static_cast<std::uint16_t>(0x0A00 + i);
    n.distance = 0.5 + 0.8 * i;  // 0.5 .. 6.1 m
    n.environment.relative_humidity = 78.0 + i;       // gradient along wall
    n.environment.strain_x = (50.0 + 10.0 * i) * 1e-6;
    session.deploy(n);
  }

  std::printf("deployed 8 capsules along %s; TX at %.0f V\n",
              cfg.structure.name.c_str(), cfg.tx_voltage);
  std::printf("power-up reachability per node:\n");
  for (int i = 0; i < 8; ++i) {
    const double d = 0.5 + 0.8 * i;
    std::printf("  node 0x%04X at %.1f m: %s (uplink SNR %.1f dB)\n",
                0x0A00 + i, d,
                session.node_reachable(d) ? "reachable" : "out of range",
                session.snr_for_distance(d));
  }

  const auto result = session.collect(
      {static_cast<std::uint8_t>(node::SensorId::kHumidity),
       static_cast<std::uint8_t>(node::SensorId::kStrainX)});

  std::printf("\ninventory: %zu nodes in %d rounds (%d slots, %d collisions,"
              " %d empty)\n",
              result.inventoried_ids.size(), result.stats.rounds,
              result.stats.slots, result.stats.collisions,
              result.stats.empty_slots);
  std::printf("readings:\n");
  for (const auto& r : result.readings) {
    const char* name = (r.sensor_id ==
                        static_cast<std::uint8_t>(node::SensorId::kHumidity))
                           ? "humidity %RH"
                           : "strain ue";
    std::printf("  node 0x%04X  %-12s %8.2f\n", r.node_id, name, r.value);
  }
  std::printf("\nSHM verdict: wall humidity gradient %.0f%% -> %.0f%% and\n",
              78.0, 78.0 + 7.0);
  std::printf("strain well below the NC cracking threshold — no action.\n");
  return 0;
}
