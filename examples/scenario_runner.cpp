// Scenario driver: parses a declarative .scn script (see docs/scenarios.md)
// and runs it through the scenario engine, printing the health-grade
// timeline and every aggregate scalar. The --out file records the outcome
// in bit-exact hexfloat form, so CI can byte-diff runs across thread counts
// or across a kill-and-resume:
//
//   scenario_runner scenarios/seismic_retrofit.scn --out full.txt
//   scenario_runner scenarios/seismic_retrofit.scn --stop-after 576 --checkpoint cp.txt
//   scenario_runner scenarios/seismic_retrofit.scn --resume --checkpoint cp.txt --out resumed.txt
//   diff full.txt resumed.txt   # must be empty at any ECOCAP_THREADS

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "dsp/serialize.hpp"
#include "scenario/engine.hpp"
#include "scenario/script.hpp"

using namespace ecocap;

namespace {

const char* mode_name(scenario::Mode m) {
  switch (m) {
    case scenario::Mode::kStructural: return "structural";
    case scenario::Mode::kMobile: return "mobile";
    case scenario::Mode::kMultiReader: return "multi_reader";
  }
  return "?";
}

/// Bit-exact dump of the outcome for byte-diffing runs against each other.
std::string dump(const scenario::ScenarioOutcome& out) {
  dsp::ser::Writer w("ecocap-scenario-outcome v1");
  w.str("name", out.name);
  w.u64("completed", out.completed ? 1 : 0);
  w.str("grade_path", out.grade_path.empty() ? "-" : out.grade_path);
  w.real_vec("trace", out.trace);
  w.u64("scalars", out.scalars.size());
  for (const auto& [key, value] : out.scalars) {
    w.str("scalar.key", key);
    w.real("scalar.value", value);
  }
  return w.payload();
}

void print_grade_timeline(const scenario::ScenarioOutcome& out,
                          dsp::Real step_hours) {
  std::printf("hourly combined health grade (Table 2 PAO x structural):\n");
  char last = '\0';
  for (std::size_t i = 0; i < out.trace.size(); ++i) {
    const char grade = static_cast<char>('A' + static_cast<int>(out.trace[i]));
    if (grade == last) continue;  // print transitions, not every hour
    const double t_days = static_cast<double>(i) * step_hours / 24.0;
    std::printf("  day %5.2f  grade %c\n", t_days, grade);
    last = grade;
  }
  std::printf("grade path: %s\n", out.grade_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_path, checkpoint, out_path;
  std::size_t stop_after = 0;
  bool resume = false;

  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--checkpoint") {
      checkpoint = next();
    } else if (arg == "--stop-after") {
      stop_after = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--resume") {
      resume = true;
    } else if (!arg.empty() && arg[0] != '-' && script_path.empty()) {
      script_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: scenario_runner SCRIPT.scn [--checkpoint FILE] "
                   "[--stop-after UNITS] [--resume] [--out FILE]\n");
      return 2;
    }
  }
  if (script_path.empty()) {
    std::fprintf(stderr, "scenario_runner: no script given\n");
    return 2;
  }

  try {
    const auto script = scenario::ScenarioScript::load(script_path);
    scenario::RunControl control;
    control.checkpoint_path = checkpoint;
    control.stop_after_units = stop_after;
    scenario::ScenarioEngine engine(script, control);
    const scenario::ScenarioOutcome out =
        resume ? engine.resume() : engine.run();

    std::printf("scenario %s (%s): %s\n", out.name.c_str(),
                mode_name(out.mode),
                out.completed ? "completed" : "stopped at checkpoint");
    if (out.completed) {
      if (out.mode == scenario::Mode::kStructural) {
        print_grade_timeline(out, 1.0);
      }
      for (const auto& [key, value] : out.scalars) {
        std::printf("  %-24s %.6g\n", key.c_str(), value);
      }
    }
    if (!out_path.empty()) {
      if (!dsp::ser::atomic_write_file(out_path, dump(out))) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
