// Self-healing fleet runtime demo: a DaemonSupervisor keeps three streaming
// reader daemons (one embedded capsule each) alive while an "operator"
// thread kills one mid-run and stalls another. The supervisor's watchdog
// detects the hang via missed heartbeats, the crashed daemon restarts from
// its last checkpoint, and the campaign still finishes with every poll
// delivered into the shared TelemetryStore — the console trace shows the
// kill, the detection, and the recovery as they happen.
//
//   ./fleet_runtime [polls_per_daemon]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/link_simulator.hpp"
#include "runtime/daemon_supervisor.hpp"
#include "stream/streaming_reader.hpp"

using namespace ecocap;

int main(int argc, char** argv) {
  const auto polls =
      static_cast<std::uint64_t>(argc > 1 ? std::atoll(argv[1]) : 10);
  constexpr std::size_t kDaemons = 3;

  runtime::RuntimeConfig config;
  for (std::size_t i = 0; i < kDaemons; ++i) {
    reader::StreamingReaderConfig d;
    d.stream.system = core::default_system();
    d.stream.system.seed += 1000 * (i + 1);
    d.stream.system.capsule.firmware.node_id =
        static_cast<std::uint16_t>(42 + i);
    d.stream.block_size = 256;
    d.poll_interval_s = 0.05;
    d.warmup_s = 0.5;
    config.daemons.push_back(std::move(d));
  }
  config.polls_per_daemon = polls;
  config.checkpoint_every_polls = 4;
  config.event_ring_capacity = 64;
  config.heartbeat_timeout_ms = 1500.0;
  config.watchdog_interval_ms = 5.0;
  config.on_event = [](const runtime::PollEvent& ev) {
    std::printf("  [daemon %u] poll %2llu  %-9s value=%.2f t=%u s\n",
                ev.daemon, static_cast<unsigned long long>(ev.poll),
                ev.delivered ? "delivered" : "missed",
                static_cast<double>(ev.value), ev.t_sec);
  };

  runtime::DaemonSupervisor supervisor(config);

  // The operator: waits for the fleet to get going, then kills daemon 0
  // outright and wedges daemon 1's pipeline. Both injections ride the same
  // runtime-fault machinery a chaos plan uses.
  std::thread operator_thread([&supervisor] {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    std::printf("-- operator: killing daemon 0\n");
    supervisor.inject_crash(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    std::printf("-- operator: stalling daemon 1 (watchdog must notice)\n");
    supervisor.inject_stall(1, 2);
  });

  std::printf("fleet runtime: %zu daemons x %llu polls\n", kDaemons,
              static_cast<unsigned long long>(polls));
  const auto stats = supervisor.run();
  operator_thread.join();

  std::printf("\n%-8s %6s %8s %8s %8s %6s %12s\n", "daemon", "polls",
              "restarts", "crashes", "kicks", "drops", "recovery-ms");
  for (std::size_t i = 0; i < stats.daemons.size(); ++i) {
    const auto& d = stats.daemons[i];
    std::printf("%-8zu %6llu %8llu %8llu %8llu %6llu %12.2f\n", i,
                static_cast<unsigned long long>(d.polls_done),
                static_cast<unsigned long long>(d.restarts),
                static_cast<unsigned long long>(d.crashes),
                static_cast<unsigned long long>(d.watchdog_kicks),
                static_cast<unsigned long long>(d.events_dropped),
                d.recovery_latency_ms_max);
  }
  std::printf("events collected %llu  total restarts %llu  wall %.2f s\n",
              static_cast<unsigned long long>(stats.events_collected),
              static_cast<unsigned long long>(stats.total_restarts()),
              stats.wall_seconds);

  // The self-healing claim: despite the kill and the stall, every daemon
  // finished its full campaign.
  bool healed = stats.total_restarts() >= 1;
  for (const auto& d : stats.daemons) healed = healed && d.polls_done == polls;
  std::printf(healed ? "fleet healed: all campaigns completed\n"
                     : "fleet did NOT heal\n");
  return healed ? 0 : 1;
}
