// Footbridge monitor: a compressed version of the paper's §6 pilot study.
// Simulates one week of bridge life (including a storm), grades per-section
// health every minute against the Hong Kong PAO standard, raises anomaly
// windows, and cross-checks with EcoCapsule readings collected through the
// protocol stack.

#include <cstdio>

#include "shm/monitor.hpp"

using namespace ecocap;

int main() {
  shm::MonitoringCampaign::Config cfg;
  cfg.days = 7.0;
  cfg.step_minutes = 1.0;
  cfg.capsule_count = 5;
  cfg.capsule_poll_hours = 6.0;
  // Pull the storm into this week so the detector has something to find.
  cfg.weather.storms = {shm::StormEvent{4.0, 5.5, 22.0}};
  cfg.seed = 11;

  std::printf("running a 7-day SHM campaign on the 84.24 m footbridge...\n");
  shm::MonitoringCampaign campaign(cfg);
  const shm::CampaignResult r = campaign.run();

  std::printf("\nday-by-day summary:\n");
  std::printf("day  acc_env(m/s^2)  stress(MPa)  humidity(%%)  worst PAO\n");
  const std::size_t per_day = 24 * 60;
  for (int d = 0; d < 7; ++d) {
    const std::size_t a = static_cast<std::size_t>(d) * per_day;
    const auto acc = r.acceleration.stats(a, a + per_day);
    const auto st = r.stress.stats(a, a + per_day);
    const auto hum = r.humidity.stats(a, a + per_day);
    const auto pao = r.pao.stats(a, a + per_day);
    std::printf("%3d  %13.4f  %11.1f  %11.0f  %9.1f\n", d + 1, acc.stddev,
                st.mean, hum.mean, pao.min);
  }

  std::printf("\nanomaly windows:\n");
  if (r.anomalies.empty()) std::printf("  none\n");
  for (const auto& a : r.anomalies) {
    std::printf("  day %.1f -> %.1f (peak z = %.1f) — storm response\n",
                a.start_day + 1.0, a.end_day + 1.0, a.peak_zscore);
  }

  std::printf("\nhealth histogram (minutes per grade):\n");
  for (const auto& [section, hist] : r.health_histogram) {
    std::printf("  section %c:", section);
    for (const auto& [letter, count] : hist) {
      std::printf("  %c=%d", letter, count);
    }
    std::printf("\n");
  }
  std::printf("\nstructural limit violations: %d\n", r.limit_violations);
  std::printf("EcoCapsule cross-check readings collected: %zu\n",
              r.capsule_readings.size());
  return 0;
}
