// Crash-safe campaign driver: runs a supervised, fault-injected monitoring
// campaign with periodic checkpoints, optionally stopping mid-campaign (the
// simulated crash) or resuming from the checkpoint file. The --out file
// records every result series and counter in bit-exact hexfloat form, so CI
// can byte-diff a kill-at-midpoint-and-resume run against an uninterrupted
// one:
//
//   campaign_checkpoint --days 4 --checkpoint cp.txt --out full.txt
//   campaign_checkpoint --days 4 --stop-at-day 2 --checkpoint cp.txt
//   campaign_checkpoint --days 4 --checkpoint cp.txt --resume --out resumed.txt
//   diff full.txt resumed.txt   # must be empty at any ECOCAP_THREADS

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "channel/snr_models.hpp"
#include "shm/monitor.hpp"
#include "wave/material.hpp"

using namespace ecocap;

namespace {

void save_stats(dsp::ser::Writer& w, const reader::InventoryStats& s) {
  w.i64("stats.rounds", s.rounds);
  w.i64("stats.slots", s.slots);
  w.i64("stats.collisions", s.collisions);
  w.i64("stats.acked", s.acked);
  w.i64("stats.read_ok", s.read_ok);
  w.i64("stats.read_failed", s.read_failed);
  w.i64("stats.retries", s.retries);
  w.i64("stats.timeouts", s.timeouts);
  w.i64("stats.crc_fails", s.crc_fails);
  w.i64("stats.giveups", s.giveups);
  w.i64("stats.backoff_slots", s.backoff_slots);
  w.i64("stats.deadline_trips", s.deadline_trips);
}

void save_series(dsp::ser::Writer& w, std::string_view key,
                 const shm::TimeSeries& ts) {
  const auto span = ts.values();
  w.real_vec(key, std::vector<dsp::Real>(span.begin(), span.end()));
}

/// Bit-exact dump of everything the campaign accumulated.
std::string aggregates(const shm::CampaignResult& res) {
  dsp::ser::Writer w("ecocap-campaign-aggregates v1");
  w.u64("completed", res.completed ? 1 : 0);
  save_series(w, "acceleration", res.acceleration);
  save_series(w, "stress", res.stress);
  save_series(w, "stress_side", res.stress_side);
  save_series(w, "humidity", res.humidity);
  save_series(w, "temperature", res.temperature);
  save_series(w, "pressure", res.pressure);
  save_series(w, "pao", res.pao);
  w.u64("anomalies", res.anomalies.size());
  for (const auto& a : res.anomalies) {
    w.real("anomaly.start_day", a.start_day);
    w.real("anomaly.end_day", a.end_day);
    w.real("anomaly.peak_zscore", a.peak_zscore);
  }
  w.i64("limit_violations", res.limit_violations);
  w.u64("capsule_readings", res.capsule_readings.size());
  for (const auto& r : res.capsule_readings) {
    w.u64("reading.node", r.node_id);
    w.u64("reading.sensor", r.sensor_id);
    w.real("reading.value", r.value);
  }
  w.u64("capsule_log", res.capsule_log.size());
  for (const auto& entry : res.capsule_log) {
    w.u64("log.node", entry.reading.node_id);
    w.u64("log.sensor", entry.reading.sensor_id);
    w.real("log.value", entry.reading.value);
    w.u64("log.stale", entry.stale ? 1 : 0);
    w.real("log.age_hours", entry.age_hours);
  }
  w.u64("stale_nodes", res.max_staleness_hours.size());
  for (const auto& [node, hours] : res.max_staleness_hours) {
    w.u64("staleness.node", node);
    w.real("staleness.hours", hours);
  }
  save_stats(w, res.inventory_totals);
  w.i64("sup.fallbacks", res.supervisor_totals.fallbacks);
  w.i64("sup.probes", res.supervisor_totals.probes);
  w.i64("sup.failed_probes", res.supervisor_totals.failed_probes);
  w.i64("sup.quarantines", res.supervisor_totals.quarantines);
  w.i64("sup.reintegrations", res.supervisor_totals.reintegrations);
  w.i64("sup.skipped_polls", res.supervisor_totals.skipped_polls);
  w.u64("link_states", res.link_states.size());
  for (const auto& [node, s] : res.link_states) {
    w.u64("link.node", node);
    w.i64("link.ladder_index", s.ladder_index);
    w.real("link.ewma_success", s.ewma_success);
    w.u64("link.quarantined", s.quarantined ? 1 : 0);
    w.i64("link.fallbacks", s.fallbacks);
    w.i64("link.quarantines", s.quarantines);
  }
  return w.payload();
}

}  // namespace

int main(int argc, char** argv) {
  double days = 4.0;
  double stop_at_day = 0.0;
  std::string checkpoint, out;
  bool resume = false;
  std::uint64_t seed = 2021;

  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      days = std::atof(next());
    } else if (arg == "--stop-at-day") {
      stop_at_day = std::atof(next());
    } else if (arg == "--checkpoint") {
      checkpoint = next();
    } else if (arg == "--out") {
      out = next();
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--resume") {
      resume = true;
    } else {
      std::fprintf(stderr,
                   "usage: campaign_checkpoint [--days N] [--stop-at-day X] "
                   "[--checkpoint FILE] [--resume] [--out FILE] [--seed S]\n");
      return 2;
    }
  }

  shm::MonitoringCampaign::Config cfg;
  cfg.days = days;
  cfg.capsule_poll_hours = 3.0;
  cfg.seed = seed;
  cfg.retry.enabled = true;
  cfg.fault = fault::FaultPlan::at_intensity(0.5);
  cfg.supervisor.enabled = true;
  cfg.supervisor.ladder = reader::SupervisorConfig::fig16_ladder(
      channel::UplinkSnrModel::ecocapsule(wave::materials::normal_concrete()),
      {16000.0, 8000.0, 4000.0, 2000.0});
  cfg.checkpoint_path = checkpoint;
  cfg.checkpoint_hours = 12.0;
  if (stop_at_day > 0.0) {
    cfg.stop_after_steps = static_cast<std::size_t>(
        stop_at_day * 24.0 * 60.0 / cfg.step_minutes);
  }

  shm::MonitoringCampaign campaign(cfg);
  const shm::CampaignResult result = resume ? campaign.resume() : campaign.run();

  std::printf("campaign %s: %zu samples, %zu capsule readings, "
              "%d deadline trips, %d quarantines\n",
              result.completed ? "completed" : "stopped",
              result.acceleration.size(), result.capsule_readings.size(),
              result.inventory_totals.deadline_trips,
              result.supervisor_totals.quarantines);
  if (!out.empty()) {
    if (!dsp::ser::atomic_write_file(out, aggregates(result))) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
