// Building designer: the civil-engineering side of the collaboration. For
// a planned building, pick the shell material for the target height
// (Eq. 4), choose the wave-prism angle for the chosen concrete, verify the
// HRA geometry for the carrier, and estimate how many reader positions the
// walls need for full charging coverage.

#include <cmath>
#include <cstdio>

#include "channel/link_budget.hpp"
#include "channel/structures.hpp"
#include "node/shell.hpp"
#include "wave/helmholtz.hpp"
#include "wave/prism.hpp"
#include "wave/snell.hpp"

using namespace ecocap;

int main() {
  // The project: a 120 m tower with 20 cm UHPC walls; readers drive 200 V.
  const double building_height = 120.0;
  const wave::Material concrete = wave::materials::uhpc();
  const double tx_voltage = 200.0;

  std::printf("=== EcoCapsule deployment plan ===\n");
  std::printf("building: %.0f m tower, %s walls\n\n", building_height,
              concrete.name.c_str());

  // 1. Shell material selection.
  const node::Shell resin_shell;
  std::printf("[shell] SLA resin survives up to %.0f m",
              resin_shell.max_building_height(concrete.density));
  if (resin_shell.survives(building_height, concrete.density)) {
    std::printf(" -> resin shells are sufficient\n");
  } else {
    node::ShellConfig steel;
    steel.material = node::ShellMaterial::alloy_steel();
    std::printf(" -> switch to alloy steel (limit %.0f m)\n",
                node::Shell(steel).max_building_height(concrete.density));
  }
  std::printf("[shell] casting pour head 3 m: %s\n\n",
              resin_shell.survives_casting(3.0) ? "survives" : "FAILS");

  // 2. Prism design for this concrete.
  const wave::Material pla = wave::materials::pla();
  const auto ca1 = wave::first_critical_angle(pla, concrete);
  const auto ca2 = wave::second_critical_angle(pla, concrete);
  const double pick =
      wave::rad_to_deg(0.5 * (*ca1 + *ca2));  // middle of the S-only window
  std::printf("[prism] S-only window for %s: [%.0f, %.0f] deg -> use %.0f deg\n",
              concrete.name.c_str(), wave::rad_to_deg(*ca1),
              wave::rad_to_deg(*ca2), pick);
  const wave::WavePrism prism(pla, concrete, wave::deg_to_rad(pick));
  std::printf("[prism] conducted S amplitude: %.2f (energy through the\n"
              "        interface: %.0f%%)\n\n",
              prism.conducted_amplitudes().s,
              100.0 * prism.interface_energy_transmittance());

  // 3. HRA tuning for the 230 kHz carrier in this concrete.
  const auto base = wave::HelmholtzResonator::paper_prototype();
  const double an = wave::HelmholtzResonator::solve_neck_area(
      230.0e3, concrete.cs, base.cavity_volume, base.neck_length);
  std::printf("[hra] neck area for 230 kHz in %s: %.2f mm^2\n\n",
              concrete.name.c_str(), an * 1e6);

  // 4. Charging coverage: reader positions along a 20 m wall.
  channel::Structure wall = channel::structures::s3_common_wall();
  wall.material = concrete;
  const channel::LinkBudget budget(wall, 0.5, 2.0);
  const auto range = budget.max_powerup_range(tx_voltage);
  if (range) {
    const int positions =
        static_cast<int>(std::ceil(wall.length / (2.0 * *range)));
    std::printf("[coverage] power-up range at %.0f V: %.1f m -> %d reader\n"
                "           positions per 20 m wall (bilateral coverage)\n",
                tx_voltage, *range, positions);
  } else {
    std::printf("[coverage] %0.f V cannot power nodes in this wall!\n",
                tx_voltage);
  }
  return 0;
}
