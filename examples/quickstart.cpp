// Quickstart: power up one EcoCapsule embedded 15 cm deep in a normal
// concrete block and read its temperature sensor through the full waveform
// pipeline — the "hello world" of the library.

#include <cmath>
#include <cstdio>

#include "core/link_simulator.hpp"

using namespace ecocap;

int main() {
  // 1. Describe the deployment: the default system is the paper's
  //    prototype — 230 kHz carrier, 60-degree PLA prism, 1 kbps FM0 uplink
  //    at a 4 kHz backscatter link frequency, NC test block.
  core::SystemConfig config = core::default_system();
  config.channel.distance = 0.15;     // node sits 15 cm from the reader
  config.transmitter.tx_voltage = 100.0;
  config.channel.noise_sigma = 1e-4;

  // 2. The physical truth inside the concrete that the sensors will read.
  node::ConcreteEnvironment env;
  env.temperature_c = 26.8;
  env.relative_humidity = 88.0;

  // 3. Run a full interrogation: CBW charging, PIE/FSK downlink commands
  //    (Query -> Ack -> Read), FM0 backscatter uplink, ML decoding.
  core::LinkSimulator link(config);
  const core::InterrogationResult r =
      link.interrogate(node::SensorId::kTemperature, env);

  std::printf("node powered:        %s\n", r.node_powered ? "yes" : "no");
  std::printf("storage cap voltage: %.2f V\n", r.cap_voltage);
  std::printf("command decoded:     %s\n", r.command_decoded ? "yes" : "no");
  std::printf("carrier estimate:    %.1f kHz\n", r.carrier_estimate / 1e3);
  // uplink_snr_db is NaN until a frame decodes — there is no measurement
  // to print for a failed round.
  if (std::isnan(r.uplink_snr_db)) {
    std::printf("uplink SNR:          <no decoded frame>\n");
  } else {
    std::printf("uplink SNR:          %.1f dB\n", r.uplink_snr_db);
  }
  if (r.sensor_value) {
    std::printf("temperature read:    %.2f degC (truth: %.2f)\n",
                *r.sensor_value, env.temperature_c);
  } else {
    std::printf("temperature read:    <failed>\n");
    return 1;
  }

  // 4. Bonus: where exactly is the capsule? Time-of-flight ranging off the
  //    backscatter round trip (the paper's §3.2 unknown-position problem).
  const auto range = link.estimate_node_distance();
  if (range.valid) {
    std::printf("ranged distance:     %.2f m (truth: %.2f m)\n",
                range.distance, config.channel.distance);
  }
  return 0;
}
