// Minimal streaming daemon demo: a StreamingReader interrogates one
// embedded capsule continuously for a few simulated seconds, a hostile
// fault plan goes live mid-run (burst noise, dropouts, a leaky storage
// cap), and the adaptive LinkSupervisor reacts online — all from the live
// sample stream, never a pre-rendered waveform. Prints each poll's outcome,
// the supervisor's reactions, and the real-time factor (simulated seconds
// per wall second; >= 1 means the daemon could front a real ADC).
//
//   ./streaming_reader [sim_seconds]

#include <cstdio>
#include <cstdlib>

#include "core/link_simulator.hpp"
#include "stream/streaming_reader.hpp"

using namespace ecocap;

int main(int argc, char** argv) {
  const double sim_seconds = argc > 1 ? std::atof(argv[1]) : 4.0;
  const double fault_at_s = sim_seconds / 2.0;

  reader::StreamingReaderConfig config;
  config.stream.system = core::default_system();
  config.stream.block_size = 256;
  config.poll_interval_s = 0.25;
  config.warmup_s = 0.5;

  // Supervise with a ladder anchored at the scenario's nominal line rate so
  // the clean phase runs at full speed and the fault forces a fallback.
  config.supervisor.enabled = true;
  config.supervisor.ladder = {reader::LadderStep{1000.0, 4000.0, 0.0},
                              reader::LadderStep{500.0, 4000.0, 3.01}};

  // Mid-run the site turns hostile: the injector perturbs the live stream
  // from the first poll boundary at or after fault_at_s.
  reader::StreamFaultEvent event;
  event.at_s = fault_at_s;
  event.plan = fault::FaultPlan::at_intensity(0.8);
  config.fault_events.push_back(event);

  reader::StreamingReader daemon(config);

  std::printf("streaming daemon: %.1f s of stream time, fault at %.1f s\n",
              sim_seconds, fault_at_s);
  int last_rung = 0;
  daemon.set_poll_hook([&](std::uint64_t poll, bool delivered) {
    auto& pipeline = daemon.pipeline();
    const auto& step = daemon.supervisor().step_for(
        daemon.config().stream.system.capsule.firmware.node_id);
    std::printf("  poll %2llu @ %5.2f s  %-9s cap=%.2f V  rate=%4.0f bps\n",
                static_cast<unsigned long long>(poll),
                static_cast<double>(pipeline.position()) / pipeline.fs(),
                delivered ? "delivered" : "missed",
                pipeline.node_cap_voltage(), step.bitrate);
    if (step.bitrate < 1000.0 && last_rung == 0) {
      std::printf("  -> supervisor fell back to %.0f bps\n", step.bitrate);
      last_rung = 1;
    }
  });

  const auto stats = daemon.run(sim_seconds);

  std::printf("\npolls %llu  delivered %llu  missed %llu  skipped %llu\n",
              static_cast<unsigned long long>(stats.polls),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.missed),
              static_cast<unsigned long long>(stats.skipped));
  std::printf("fault events applied %llu  frames scheduled %llu\n",
              static_cast<unsigned long long>(stats.fault_events_applied),
              static_cast<unsigned long long>(stats.frames_scheduled));
  std::printf("supervisor: fallbacks %d  probes %d  quarantines %d\n",
              stats.supervisor.fallbacks, stats.supervisor.probes,
              stats.supervisor.quarantines);
  if (const auto latest = daemon.telemetry().latest(0)) {
    std::printf("latest reading: %.2f at t=%u s\n",
                static_cast<double>(latest->value), latest->t_sec);
  }
  std::printf("real-time factor: %.2f sim-sec/wall-sec over %.1f s\n",
              stats.real_time_factor, stats.sim_seconds);
  return stats.delivered > 0 ? 0 : 1;
}
