// Garage degradation: the scenario that motivates the paper — the
// Champlain Towers South collapse began with years of water penetration and
// rebar corrosion in the ground-level parking garage. Here a garage slab is
// cast with EcoCapsules; we simulate five years of chloride-driven
// degradation and show the implanted sensors flagging it long before
// failure, while surface inspection sees nothing.

#include <cmath>
#include <cstdio>

#include "core/inventory_session.hpp"
#include "shm/modal.hpp"

using namespace ecocap;

int main() {
  // A 15 cm garage slab with four capsules along a drainage path.
  core::InventorySession::Config cfg;
  cfg.structure = channel::structures::s3_common_wall();
  cfg.tx_voltage = 200.0;
  cfg.seed = 77;
  core::InventorySession session(cfg);
  for (int i = 0; i < 4; ++i) {
    core::DeployedNode n;
    n.node_id = static_cast<std::uint16_t>(0x0D00 + i);
    n.distance = 0.5 + 0.7 * i;
    session.deploy(n);
  }

  std::printf("five-year monitoring of a garage slab (annual inspections)\n");
  std::printf(
      "year  humidity%%  strain_ue  stiffness_mode_hz  internal_verdict\n");

  const double fs = 100.0;
  const double f0 = 6.0;  // slab mode
  const auto baseline_vib = shm::synthesize_vibration(f0, 0.03, fs, 600.0, 5);

  for (int year = 0; year <= 5; ++year) {
    // Chloride ingress: internal humidity climbs, corrosion swells the
    // rebar (tensile strain), stiffness decays.
    const double ingress = 1.0 - std::exp(-year / 2.5);
    const double humidity = 78.0 + 18.0 * ingress;
    const double strain = 40.0 + 450.0 * ingress;             // microstrain
    const double stiffness_loss = 0.12 * ingress;             // fraction
    const double f_now = f0 * std::sqrt(1.0 - stiffness_loss);

    // Update the capsules' local environment and read them back through
    // the full TDMA protocol.
    for (int i = 0; i < 4; ++i) {
      node::ConcreteEnvironment env;
      env.relative_humidity = humidity + 2.0 * i;  // wetter near the drain
      env.strain_x = strain * 1e-6;
      session.set_environment(static_cast<std::uint16_t>(0x0D00 + i), env);
    }
    const auto readings = session.collect(
        {static_cast<std::uint8_t>(node::SensorId::kHumidity),
         static_cast<std::uint8_t>(node::SensorId::kStrainX)});
    double rh = 0.0, ue = 0.0;
    int nh = 0, ns = 0;
    for (const auto& r : readings.readings) {
      if (r.sensor_id == static_cast<std::uint8_t>(node::SensorId::kHumidity)) {
        rh += r.value;
        ++nh;
      } else {
        ue += r.value;
        ++ns;
      }
    }
    rh = nh ? rh / nh : 0.0;
    ue = ns ? ue / ns : 0.0;

    // Modal cross-check from the vibration record.
    const auto vib = shm::synthesize_vibration(
        f_now, 0.03, fs, 600.0, 50 + static_cast<std::uint64_t>(year));
    const auto damage = shm::assess_damage(baseline_vib, vib, fs, 1.0, 20.0);

    const bool humid_alarm = rh > 90.0;
    const bool strain_alarm = ue > 300.0;
    const char* verdict =
        (damage.damaged || (humid_alarm && strain_alarm))
            ? "DEGRADING - intervene"
            : (humid_alarm || strain_alarm ? "watch" : "healthy");
    std::printf("%4d  %8.1f  %9.0f  %17.2f  %s\n", year, rh, ue,
                damage.current_hz > 0 ? damage.current_hz : f_now, verdict);
  }
  std::printf(
      "\nthe in-concrete sensors see the moisture/strain trend years before\n"
      "any surface symptom — the monitoring the Surfside garage never had.\n");
  return 0;
}
